"""Backend parity for the bijector and flow inference kernels.

The contract (see ``docs/kernels.md``): the ``numpy`` backend is
bit-identical to ``reference`` (which is itself a transliteration of the
seed-era Tensor compositions, pinned here by comparing against the live
Tensor graph), and the optional ``numba`` backend agrees to tight
allclose on raw floats while producing identical guess streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.autograd import Tensor, no_grad
from repro.flows.actnorm import ActNorm
from repro.flows.additive import AdditiveCoupling
from repro.flows.coupling import AffineCoupling
from repro.flows.flow import Flow
from repro.flows.logit import LogitTransform
from repro.flows.masks import alternating_masks

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)

flow_case = st.tuples(
    st.integers(min_value=4, max_value=8),  # dim
    st.integers(min_value=1, max_value=3),  # couplings
    st.integers(min_value=1, max_value=12),  # batch
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build_flow(dim, couplings, seed, actnorm=True, additive=False):
    rng = np.random.default_rng(seed)
    bijectors = [LogitTransform(alpha=0.05)]
    for i, mask in enumerate(alternating_masks("char-run-1", dim, couplings)):
        if additive and i % 2 == 1:
            coupling = AdditiveCoupling(mask, hidden=12, num_blocks=1, rng=rng)
            coupling.translate_net.output.weight.data[:] = (
                rng.normal(size=(12, dim)) * 0.3
            )
        else:
            coupling = AffineCoupling(mask, hidden=12, num_blocks=2, rng=rng)
            coupling.scale_net.output.weight.data[:] = rng.normal(size=(12, dim)) * 0.3
            coupling.translate_net.output.weight.data[:] = (
                rng.normal(size=(12, dim)) * 0.3
            )
        bijectors.append(coupling)
        if actnorm:
            norm = ActNorm(dim)
            norm.initialize_from(rng.normal(size=(32, dim)))
            bijectors.append(norm)
    flow = Flow(bijectors)
    flow.eval()
    return flow


def tensor_encode(flow, x):
    """The seed-era composed-Tensor forward, as Flow.encode used to run it."""
    with no_grad():
        z = Tensor(np.atleast_2d(x))
        total = None
        for bijector in flow.bijectors:
            z, log_det = bijector.forward(z)
            total = log_det if total is None else total + log_det
    return z.data, total.data


def tensor_decode(flow, z):
    """The seed-era composed-Tensor inverse, as Flow.decode used to run it."""
    with no_grad():
        x = Tensor(np.atleast_2d(z))
        for bijector in reversed(flow.bijectors):
            x = bijector.inverse(x)
    return x.data


class TestTensorPathIsTheAnchor:
    """reference/numpy array paths == the live Tensor graph, bitwise."""

    @given(flow_case)
    @settings(max_examples=15, deadline=None)
    def test_encode_log_prob_decode_bitwise(self, case):
        dim, couplings, batch, seed = case
        flow = build_flow(dim, couplings, seed)
        rng = np.random.default_rng(seed + 1)
        x = rng.random((batch, dim)) * 0.9 + 0.05
        z_ref, ld_ref = tensor_encode(flow, x)
        lp_ref = flow.prior.log_prob(z_ref) + ld_ref
        for backend in ("reference", "numpy"):
            with kernels.use_backend(backend):
                z = flow.encode(x)
                assert np.array_equal(z, z_ref), backend
                assert np.array_equal(flow.log_prob(x), lp_ref), backend
                assert np.array_equal(flow.decode(z), tensor_decode(flow, z)), backend

    @given(flow_case)
    @settings(max_examples=10, deadline=None)
    def test_additive_variant_bitwise(self, case):
        dim, couplings, batch, seed = case
        flow = build_flow(dim, couplings, seed, additive=True)
        rng = np.random.default_rng(seed + 2)
        x = rng.random((batch, dim)) * 0.9 + 0.05
        z_ref, ld_ref = tensor_encode(flow, x)
        for backend in ("reference", "numpy"):
            with kernels.use_backend(backend):
                assert np.array_equal(flow.encode(x), z_ref), backend
                assert np.array_equal(flow.decode(z_ref), tensor_decode(flow, z_ref))

    def test_roundtrip_stays_exact(self):
        flow = build_flow(6, 3, seed=4)
        x = np.random.default_rng(0).random((64, 6)) * 0.9 + 0.05
        for backend in ("reference", "numpy"):
            with kernels.use_backend(backend):
                assert flow.check_invertibility(x) < 1e-8


class TestKernelLevelParity:
    """numpy backend kernels == reference kernels on raw arrays, bitwise."""

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_coupling_kernels(self, n, d, seed):
        rng = np.random.default_rng(seed)
        mask = (np.arange(d) % 2).astype(np.float64)
        inv_mask = 1.0 - mask
        x = rng.normal(size=(n, d))
        masked = x * mask
        raw = rng.normal(size=(n, d)) * 3.0
        t = rng.normal(size=(n, d))
        ref = kernels._load("reference")
        fused = kernels._load("numpy")
        z_a, ld_a = ref.coupling_forward(x, masked, inv_mask, raw, t, 2.0)
        z_b, ld_b = fused.coupling_forward(x, masked, inv_mask, raw, t, 2.0)
        assert np.array_equal(z_a, z_b)
        assert np.array_equal(ld_a, ld_b)
        assert np.array_equal(
            ref.coupling_inverse(x, masked, inv_mask, raw, t, 2.0),
            fused.coupling_inverse(x, masked, inv_mask, raw, t, 2.0),
        )

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_logit_and_actnorm_kernels(self, n, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((n, d)) * 0.96 + 0.02
        z = rng.normal(size=(n, d)) * 4.0
        bias = rng.normal(size=d)
        log_scale = rng.normal(size=d) * 0.5
        ref = kernels._load("reference")
        fused = kernels._load("numpy")
        for a, b in zip(ref.logit_forward(x, 0.05), fused.logit_forward(x, 0.05)):
            assert np.array_equal(a, b)
        assert np.array_equal(
            ref.logit_inverse(z, 0.05), fused.logit_inverse(z, 0.05)
        )
        for a, b in zip(
            ref.actnorm_forward(x, bias, log_scale),
            fused.actnorm_forward(x, bias, log_scale),
        ):
            assert np.array_equal(a, b)
        assert np.array_equal(
            ref.actnorm_inverse(z, bias, log_scale),
            fused.actnorm_inverse(z, bias, log_scale),
        )

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_mlp_forward_matches_reference(self, n, seed):
        rng = np.random.default_rng(seed)
        dim, hidden = 5, 12
        params = [rng.normal(size=(dim, hidden)) * 0.3, rng.normal(size=hidden)]
        for _ in range(2):
            params += [
                rng.normal(size=(hidden, hidden)) * 0.3,
                rng.normal(size=hidden),
                rng.normal(size=(hidden, hidden)) * 0.3,
                rng.normal(size=hidden),
            ]
        params += [rng.normal(size=(hidden, dim)) * 0.3, rng.normal(size=dim)]
        x = rng.normal(size=(n, dim))
        ref = kernels._load("reference")
        fused = kernels._load("numpy")
        expected = ref.mlp_forward(params, x, 2, {})
        scratch = {}
        assert np.array_equal(fused.mlp_forward(params, x, 2, scratch), expected)
        # the scratch buffer is reused across calls with the same shape
        again = fused.mlp_forward(params, x, 2, scratch)
        assert np.array_equal(again, expected)
        assert len(scratch) == 1


@needs_numba
class TestNumbaParity:
    """numba backend: ulp-tight on floats, identical guess streams."""

    def test_flow_paths_allclose(self):
        flow = build_flow(6, 3, seed=9)
        x = np.random.default_rng(1).random((32, 6)) * 0.9 + 0.05
        with kernels.use_backend("numpy"):
            z_np = flow.encode(x)
            lp_np = flow.log_prob(x)
            x_np = flow.decode(z_np)
        with kernels.use_backend("numba"):
            z_nb = flow.encode(x)
            lp_nb = flow.log_prob(x)
            x_nb = flow.decode(z_np)
        assert np.allclose(z_nb, z_np, rtol=1e-12, atol=1e-12)
        assert np.allclose(lp_nb, lp_np, rtol=1e-10, atol=1e-10)
        assert np.allclose(x_nb, x_np, rtol=1e-12, atol=1e-12)

    def test_mlp2_specialization_allclose(self):
        rng = np.random.default_rng(3)
        dim, hidden = 6, 16
        params = [rng.normal(size=(dim, hidden)) * 0.3, rng.normal(size=hidden)]
        for _ in range(2):
            params += [
                rng.normal(size=(hidden, hidden)) * 0.3,
                rng.normal(size=hidden),
                rng.normal(size=(hidden, hidden)) * 0.3,
                rng.normal(size=hidden),
            ]
        params += [rng.normal(size=(hidden, dim)) * 0.3, rng.normal(size=dim)]
        x = rng.normal(size=(8, dim))
        expected = kernels._load("numpy").mlp_forward(params, x, 2, {})
        got = kernels._load("numba").mlp_forward(params, x, 2, {})
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-12)

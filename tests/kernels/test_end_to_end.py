"""End-to-end determinism: guess streams and bank artifacts across backends.

The user-facing contract from ``docs/kernels.md``: for a fixed ``(seed,
spec)``, every backend produces the same passwords, and a ``bank build``
writes byte-identical artifact files.
"""

import numpy as np
import pytest

from repro import kernels
from repro.bank import build_bank
from repro.strategies import build, take

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)

BACKENDS = ["reference", "numpy"] + (["numba"] if kernels.numba_available() else [])


def sample_stream(model, backend, spec="passflow:static?temperature=0.75", count=400):
    with kernels.use_backend(backend):
        strategy = build(spec, model=model)
        return list(take(strategy, count, np.random.default_rng(17)))


class TestGuessStreams:
    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_static_stream_identical(self, trained_model, backend):
        assert sample_stream(trained_model, backend) == sample_stream(
            trained_model, "reference"
        )

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_dynamic_stream_identical(self, trained_model, backend):
        spec = "passflow:dynamic+gs?alpha=1&sigma=0.12"
        assert sample_stream(trained_model, backend, spec=spec) == sample_stream(
            trained_model, "reference", spec=spec
        )

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_sample_passwords_identical(self, trained_model, backend):
        with kernels.use_backend("reference"):
            expected = trained_model.sample_passwords(
                300, rng=np.random.default_rng(23)
            )
        with kernels.use_backend(backend):
            got = trained_model.sample_passwords(300, rng=np.random.default_rng(23))
        assert got == expected

    def test_log_prob_bitwise_reference_vs_numpy(self, trained_model):
        passwords = ["password1", "love99", "qwerty12", "hunter2"]
        with kernels.use_backend("reference"):
            expected = trained_model.log_prob(passwords)
        with kernels.use_backend("numpy"):
            got = trained_model.log_prob(passwords)
        assert np.array_equal(got, expected)


class TestBankArtifacts:
    def build_artifact(self, model, backend, out_dir):
        with kernels.use_backend(backend):
            strategy = build("passflow:static?temperature=0.75", model=model)
            return build_bank(
                strategy, 600, out_dir, seed=13, encoder=model.encoder
            )

    def test_artifacts_byte_identical_across_backends(self, trained_model, tmp_path):
        for backend in BACKENDS:
            self.build_artifact(trained_model, backend, tmp_path / backend)
        reference_dir = tmp_path / "reference"
        files = sorted(p.name for p in reference_dir.iterdir())
        assert files, "bank artifact wrote no files"
        for backend in BACKENDS[1:]:
            other_dir = tmp_path / backend
            assert sorted(p.name for p in other_dir.iterdir()) == files
            for name in files:
                assert (other_dir / name).read_bytes() == (
                    reference_dir / name
                ).read_bytes(), f"{backend}/{name} differs from reference"

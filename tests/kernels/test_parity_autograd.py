"""Fused autograd ops vs the composed seed-era Tensor graphs.

Forward values must be bitwise identical; gradients agree to tight
allclose (the fused closed-form backwards reassociate the same real
arithmetic) and pass finite-difference checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.autograd import (
    Tensor,
    check_gradients,
    fused_actnorm,
    fused_affine_coupling,
    fused_logit,
    no_grad,
)


def composed_coupling(x, raw_scale, translate, mask, clamp):
    """The seed-era AffineCoupling combine as a Tensor expression."""
    mask_t = Tensor(mask)
    inv_t = Tensor(1.0 - mask)
    masked = x * mask_t
    scale = (raw_scale * (1.0 / clamp)).tanh() * clamp
    z = masked + inv_t * (x * scale.exp() + translate)
    log_det = (inv_t * scale).sum(axis=-1)
    return z, log_det


def composed_logit(x, alpha):
    p = x * (1.0 - 2.0 * alpha) + alpha
    y = p.log() - (1.0 - p).log()
    log_det = (np.log(1.0 - 2.0 * alpha) - p.log() - (1.0 - p).log()).sum(axis=-1)
    return y, log_det


def composed_actnorm(x, bias, log_scale):
    z = (x - bias) * log_scale.exp()
    log_det = log_scale.sum() * Tensor(np.ones(x.shape[0]))
    return z, log_det


def grads_of(loss, leaves):
    loss.backward()
    return [leaf.grad.copy() for leaf in leaves]


case = st.tuples(
    st.integers(min_value=1, max_value=10),  # batch
    st.integers(min_value=2, max_value=8),  # dim
    st.integers(min_value=0, max_value=10_000),  # seed
)


@pytest.fixture(params=["reference", "numpy"])
def backend(request):
    with kernels.use_backend(request.param):
        yield request.param


class TestFusedCoupling:
    @given(case)
    @settings(max_examples=15, deadline=None)
    def test_forward_bitwise_and_grads_close(self, c):
        n, d, seed = c
        rng = np.random.default_rng(seed)
        mask = (np.arange(d) % 2).astype(np.float64)
        xd = rng.normal(size=(n, d))
        rawd = rng.normal(size=(n, d)) * 3.0
        td = rng.normal(size=(n, d))
        for backend_name in ("reference", "numpy"):
            with kernels.use_backend(backend_name):
                x1, r1, t1 = Tensor(xd, True), Tensor(rawd, True), Tensor(td, True)
                z1, ld1 = fused_affine_coupling(x1, r1, t1, mask, 1.0 - mask, 2.0)
                x2, r2, t2 = Tensor(xd, True), Tensor(rawd, True), Tensor(td, True)
                z2, ld2 = composed_coupling(x2, r2, t2, mask, 2.0)
                assert np.array_equal(z1.data, z2.data)
                assert np.array_equal(ld1.data, ld2.data)
                g1 = grads_of((z1 * z1).sum() + ld1.sum(), [x1, r1, t1])
                g2 = grads_of((z2 * z2).sum() + ld2.sum(), [x2, r2, t2])
                for a, b in zip(g1, g2):
                    assert np.allclose(a, b, rtol=1e-9, atol=1e-9)

    def test_gradcheck(self, backend):
        rng = np.random.default_rng(0)
        mask = np.array([1.0, 0.0, 1.0, 0.0])

        def f(x, raw, t):
            z, ld = fused_affine_coupling(x, raw, t, mask, 1.0 - mask, 2.0)
            return (z * z).sum() + ld.sum()

        check_gradients(
            f,
            [rng.normal(size=(3, 4)), rng.normal(size=(3, 4)), rng.normal(size=(3, 4))],
            atol=1e-4,
        )

    def test_no_grad_builds_no_graph(self, backend):
        mask = np.array([1.0, 0.0])
        with no_grad():
            z, ld = fused_affine_coupling(
                Tensor(np.ones((2, 2)), True),
                Tensor(np.ones((2, 2)), True),
                Tensor(np.ones((2, 2)), True),
                mask,
                1.0 - mask,
                2.0,
            )
        assert not z.requires_grad and not ld.requires_grad


class TestFusedLogit:
    @given(case)
    @settings(max_examples=15, deadline=None)
    def test_forward_bitwise_and_grads_close(self, c):
        n, d, seed = c
        rng = np.random.default_rng(seed)
        xd = rng.random((n, d)) * 0.9 + 0.05
        for backend_name in ("reference", "numpy"):
            with kernels.use_backend(backend_name):
                x1 = Tensor(xd, True)
                y1, ld1 = fused_logit(x1, 0.05)
                x2 = Tensor(xd, True)
                y2, ld2 = composed_logit(x2, 0.05)
                assert np.array_equal(y1.data, y2.data)
                assert np.array_equal(ld1.data, ld2.data)
                (g1,) = grads_of((y1 * y1).sum() + ld1.sum(), [x1])
                (g2,) = grads_of((y2 * y2).sum() + ld2.sum(), [x2])
                assert np.allclose(g1, g2, rtol=1e-9, atol=1e-9)

    def test_gradcheck(self, backend):
        def f(x):
            y, ld = fused_logit(x, 0.05)
            return (y * y).sum() + ld.sum()

        check_gradients(f, [np.random.default_rng(1).random((3, 4)) * 0.8 + 0.1], atol=1e-4)


class TestFusedActNorm:
    @given(case)
    @settings(max_examples=15, deadline=None)
    def test_forward_bitwise_and_grads_close(self, c):
        n, d, seed = c
        rng = np.random.default_rng(seed)
        xd = rng.normal(size=(n, d))
        bd = rng.normal(size=d)
        lsd = rng.normal(size=d) * 0.5
        for backend_name in ("reference", "numpy"):
            with kernels.use_backend(backend_name):
                x1, b1, ls1 = Tensor(xd, True), Tensor(bd, True), Tensor(lsd, True)
                z1, ld1 = fused_actnorm(x1, b1, ls1)
                x2, b2, ls2 = Tensor(xd, True), Tensor(bd, True), Tensor(lsd, True)
                z2, ld2 = composed_actnorm(x2, b2, ls2)
                assert np.array_equal(z1.data, z2.data)
                assert np.array_equal(ld1.data, ld2.data)
                g1 = grads_of((z1 * z1).sum() + ld1.sum(), [x1, b1, ls1])
                g2 = grads_of((z2 * z2).sum() + ld2.sum(), [x2, b2, ls2])
                for a, b in zip(g1, g2):
                    assert np.allclose(a, b, rtol=1e-9, atol=1e-9)

    def test_gradcheck(self, backend):
        rng = np.random.default_rng(2)

        def f(x, bias, log_scale):
            z, ld = fused_actnorm(x, bias, log_scale)
            return (z * z).sum() + ld.sum()

        check_gradients(
            f,
            [rng.normal(size=(3, 4)), rng.normal(size=4), rng.normal(size=4) * 0.3],
            atol=1e-4,
        )

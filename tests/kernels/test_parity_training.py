"""Training parity: Adam trajectories and NLL gradients across backends.

Training dispatches every moment update through the backend ``adam_step``
and every bijector through the fused autograd ops, so reference and
numpy runs must stay bitwise locked to each other step after step.
"""

import numpy as np
import pytest

from repro import kernels
from repro.autograd import Tensor
from repro.flows.actnorm import ActNorm
from repro.flows.coupling import AffineCoupling
from repro.flows.flow import Flow
from repro.flows.logit import LogitTransform
from repro.flows.masks import alternating_masks
from repro.nn.optim.adam import Adam

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)


def build_flow(seed=0, dim=6, couplings=3):
    rng = np.random.default_rng(seed)
    bijectors = [LogitTransform(alpha=0.05)]
    for mask in alternating_masks("char-run-1", dim, couplings):
        bijectors.append(AffineCoupling(mask, hidden=16, num_blocks=2, rng=rng))
        bijectors.append(ActNorm(dim))
    return Flow(bijectors)


def train_steps(backend, steps=6, weight_decay=0.0, clip_norm=5.0, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.random((32, 6)) * 0.9 + 0.05
    with kernels.use_backend(backend):
        flow = build_flow(seed)
        optimizer = Adam(
            flow.parameters(), lr=1e-3, weight_decay=weight_decay, clip_norm=clip_norm
        )
        losses = []
        for _ in range(steps):
            optimizer.zero_grad()
            loss = flow.nll(Tensor(x))
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
    return flow, losses


class TestAdamTrajectories:
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_reference_and_numpy_bitwise_locked(self, weight_decay):
        flow_a, losses_a = train_steps("reference", weight_decay=weight_decay)
        flow_b, losses_b = train_steps("numpy", weight_decay=weight_decay)
        assert losses_a == losses_b
        for pa, pb in zip(flow_a.parameters(), flow_b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    @needs_numba
    def test_numba_training_bitwise_matches_numpy(self):
        # the numba backend delegates every training kernel to numpy
        flow_a, losses_a = train_steps("numpy")
        flow_b, losses_b = train_steps("numba")
        assert losses_a == losses_b
        for pa, pb in zip(flow_a.parameters(), flow_b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_adam_step_kernels_bitwise_equal(self):
        rng = np.random.default_rng(5)
        shapes = [(7,), (4, 9), (16, 3)]
        ref = kernels._load("reference")
        fused = kernels._load("numpy")
        for shape in shapes:
            param = rng.normal(size=shape)
            grad = rng.normal(size=shape)
            state_a = (param.copy(), np.zeros(shape), np.zeros(shape))
            state_b = (param.copy(), np.zeros(shape), np.zeros(shape))
            scratch = {}
            for t in range(1, 8):
                c1, c2 = 1.0 - 0.9**t, 1.0 - 0.999**t
                pa, ma, va = state_a
                pb, mb, vb = state_b
                ref.adam_step(pa, grad, ma, va, 1e-3, 0.9, 0.999, 1e-8, c1, c2, {})
                fused.adam_step(pb, grad, mb, vb, 1e-3, 0.9, 0.999, 1e-8, c1, c2, scratch)
                for a, b in zip(state_a, state_b):
                    assert np.array_equal(a, b)

    def test_step_allocates_nothing_once_warm(self):
        flow, _ = train_steps("numpy", steps=2)
        # scratch buffers exist for every parameter after the warm steps
        rng = np.random.default_rng(0)
        x = rng.random((32, 6)) * 0.9 + 0.05
        with kernels.use_backend("numpy"):
            optimizer = Adam(flow.parameters(), lr=1e-3)
            for _ in range(2):
                optimizer.zero_grad()
                flow.nll(Tensor(x)).backward()
                optimizer.step()
            assert all("s1" in s and "s2" in s for s in optimizer._scratch)


class TestNllGradients:
    def test_grads_match_across_backends(self):
        rng = np.random.default_rng(9)
        x = rng.random((24, 6)) * 0.9 + 0.05
        grads = {}
        for backend in ("reference", "numpy"):
            with kernels.use_backend(backend):
                flow = build_flow(2)
                flow.nll(Tensor(x)).backward()
                grads[backend] = {
                    name: p.grad.copy() for name, p in flow.named_parameters()
                }
        for name, g in grads["reference"].items():
            assert np.array_equal(g, grads["numpy"][name]), name

"""Table IV driver and the run-all orchestrator."""

import pytest

from repro.eval.experiments import table4
from repro.eval.harness import PROFILES, EvalContext
from repro.eval.run_all import DRIVERS, render_markdown, run_all


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    return EvalContext(PROFILES["tiny"], cache_dir=tmp_path_factory.mktemp("cache"))


class TestTable4:
    def test_structure(self, ctx):
        result = table4.run(ctx, sample_count=500)
        assert len(result.headers) == 4
        assert 0.0 <= result.notes["plausibility_rate"] <= 1.0
        assert 0.0 <= result.notes["structure_tv"] <= 1.0

    def test_footprint_keys(self, ctx):
        result = table4.run(ctx, sample_count=500)
        assert result.notes["top_generated_structures"]
        assert result.notes["top_corpus_structures"]

    def test_samples_are_non_matched(self, ctx):
        result = table4.run(ctx, sample_count=500)
        flat = [cell for row in result.rows for cell in row if cell]
        assert all(password not in ctx.test_set for password in flat)


class TestRunAll:
    def test_driver_registry_covers_all_artifacts(self):
        names = {driver.__name__.rsplit(".", 1)[-1] for driver in DRIVERS}
        assert names == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "fig2", "fig3", "fig4", "fig5",
        }

    def test_run_all_and_markdown(self, ctx):
        results = run_all(ctx)
        assert len(results) == len(DRIVERS)
        assert all("elapsed_seconds" in r.notes for r in results)
        markdown = render_markdown(ctx, results)
        assert "# Experiment results (profile: tiny)" in markdown
        for result in results:
            assert result.name in markdown

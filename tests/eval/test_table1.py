"""Table I driver."""

import pytest

from repro.core.dynamic import PAPER_SCHEDULE
from repro.eval.experiments import table1
from repro.eval.harness import PROFILES, EvalContext


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    return EvalContext(PROFILES["tiny"], cache_dir=tmp_path_factory.mktemp("cache"))


class TestTable1:
    def test_covers_full_paper_schedule(self, ctx):
        result = table1.run(ctx)
        # one row per paper budget + one for the active profile
        assert len(result.rows) == len(PAPER_SCHEDULE) + 1

    def test_paper_values_rendered(self, ctx):
        result = table1.run(ctx)
        alphas = [row[1] for row in result.rows[:-1]]
        assert alphas == [1, 1, 5, 50, 50]
        sigmas = [row[2] for row in result.rows[:-1]]
        assert sigmas == [0.12, 0.12, 0.12, 0.12, 0.15]

    def test_profile_row_present(self, ctx):
        result = table1.run(ctx)
        assert "this profile" in result.rows[-1][0]
        assert result.notes["profile"] == "tiny"

"""Table rendering."""

import pytest

from repro.eval.reporting import ExperimentResult, format_markdown, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["A", "Long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])

    def test_float_formatting(self):
        assert "3.14" in format_table(["x"], [[3.14159]])

    def test_thousands_separator(self):
        assert "10,000" in format_table(["x"], [[10000]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestMarkdown:
    def test_structure(self):
        md = format_markdown(["a", "b"], [[1, 2]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestExperimentResult:
    def _result(self):
        return ExperimentResult("Demo", ["x", "y"], [[1, 2.5]], notes={"k": "v"})

    def test_table_and_markdown(self):
        result = self._result()
        assert "Demo" not in result.table()  # name only in __str__
        assert "| x | y |" in result.markdown()

    def test_str_includes_name(self):
        assert "Demo" in str(self._result())

    def test_notes_accessible(self):
        assert self._result().notes["k"] == "v"

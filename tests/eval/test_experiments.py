"""Integration tests: every experiment driver runs at tiny scale and
produces a structurally valid result."""

import numpy as np
import pytest

from repro.eval.experiments import fig2, fig3, fig4, fig5, table2, table3, table5, table6
from repro.eval.experiments.common import METHODS, collect_reports
from repro.eval.harness import PROFILES, EvalContext


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    return EvalContext(PROFILES["tiny"], cache_dir=tmp_path_factory.mktemp("cache"))


class TestCommon:
    def test_collect_reports_covers_methods(self, ctx):
        reports = collect_reports(ctx)
        assert set(reports) == set(METHODS)

    def test_collect_reports_memoized(self, ctx):
        assert collect_reports(ctx) is collect_reports(ctx)

    def test_reports_share_budgets(self, ctx):
        reports = collect_reports(ctx)
        budgets = ctx.settings.guess_budgets
        for report in reports.values():
            assert [r.guesses for r in report.rows] == budgets


class TestTable2:
    def test_rows_per_method(self, ctx):
        result = table2.run(ctx)
        assert len(result.rows) == len(METHODS)
        assert all(len(row) == len(ctx.settings.guess_budgets) + 1 for row in result.rows)

    def test_percentages_bounded(self, ctx):
        result = table2.run(ctx)
        for row in result.rows:
            assert all(0.0 <= v <= 100.0 for v in row[1:])

    def test_notes_include_table4_samples(self, ctx):
        result = table2.run(ctx)
        assert isinstance(result.notes["non_matched_samples"], list)


class TestTable3:
    def test_unique_bounded_by_guesses(self, ctx):
        result = table3.run(ctx)
        for row in result.rows:
            guesses = row[0]
            uniques = row[1::2]
            assert all(u <= guesses for u in uniques)

    def test_matched_bounded_by_test_size(self, ctx):
        result = table3.run(ctx)
        test_size = result.notes["test_size"]
        for row in result.rows:
            assert all(m <= test_size for m in row[2::2])


class TestTable5:
    def test_columns_per_sigma(self, ctx):
        result = table5.run(ctx)
        assert len(result.headers) == len(table5.SIGMAS)
        assert result.notes["pivot"] == table5.PIVOT

    def test_edit_distances_reported(self, ctx):
        result = table5.run(ctx)
        assert set(result.notes["mean_edit_distance"]) == set(table5.SIGMAS)


class TestTable6:
    def test_all_strategies_reported(self, ctx):
        result = table6.run(ctx)
        assert len(result.headers) == 1 + len(table6.STRATEGIES)
        assert len(result.rows) == len(ctx.settings.guess_budgets)


class TestFig2:
    def test_separation_metrics_present(self, ctx):
        result = fig2.run(ctx, count_per_pivot=20, background=30)
        assert result.notes["separation_latent"] > 0
        assert np.isfinite(result.notes["separation_embedded"])
        assert result.notes["embedding"].shape[1] == 2


class TestFig3:
    def test_path_structure(self, ctx):
        result = fig3.run(ctx, steps=6)
        assert len(result.rows) == 7
        assert result.notes["endpoints_exact"] == (True, True)
        assert 0.0 <= result.notes["plausibility"] <= 1.0


class TestFig4:
    def test_sweep_rows(self, ctx):
        result = fig4.run(ctx)
        assert len(result.rows) == len(ctx.settings.train_size_sweep)
        assert result.rows[0][2] == 0.0  # baseline improvement is zero


class TestFig5:
    def test_both_arms_reported(self, ctx):
        result = fig5.run(ctx)
        assert len(result.rows) == len(ctx.settings.guess_budgets)
        for row in result.rows:
            assert row[1] >= 0 and row[2] >= 0

"""Evaluation harness: profiles, caching, artifact consistency."""

import numpy as np
import pytest

from repro.eval.harness import PROFILES, BenchmarkSettings, EvalContext, settings_from_env


@pytest.fixture
def tiny_ctx(tmp_path):
    return EvalContext(PROFILES["tiny"], cache_dir=tmp_path)


class TestProfiles:
    def test_all_profiles_present(self):
        assert {"tiny", "quick", "full"} <= set(PROFILES)

    def test_profiles_scale_monotonically(self):
        assert (
            PROFILES["tiny"].corpus_size
            < PROFILES["quick"].corpus_size
            < PROFILES["full"].corpus_size
        )

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "tiny")
        assert settings_from_env().name == "tiny"

    def test_env_unknown_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "galactic")
        with pytest.raises(KeyError):
            settings_from_env()

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert settings_from_env("tiny").name == "tiny"


class TestContext:
    def test_corpus_deterministic(self, tmp_path):
        a = EvalContext(PROFILES["tiny"], cache_dir=tmp_path / "a").corpus
        b = EvalContext(PROFILES["tiny"], cache_dir=tmp_path / "b").corpus
        assert a == b

    def test_corpus_size(self, tiny_ctx):
        assert len(tiny_ctx.corpus) == PROFILES["tiny"].corpus_size

    def test_dataset_test_cleaned_against_train(self, tiny_ctx):
        train = set(tiny_ctx.corpus[: PROFILES["tiny"].train_size])
        assert not (tiny_ctx.test_set & train)

    def test_passflow_cached_to_disk_and_reloaded(self, tmp_path):
        ctx_a = EvalContext(PROFILES["tiny"], cache_dir=tmp_path)
        model_a = ctx_a.passflow()
        assert (tmp_path / "tiny-passflow-char-run-1.npz").exists()
        ctx_b = EvalContext(PROFILES["tiny"], cache_dir=tmp_path)
        model_b = ctx_b.passflow()
        passwords = ["love12"]
        assert np.allclose(
            model_a.encode_passwords(passwords), model_b.encode_passwords(passwords)
        )

    def test_passflow_memoized_in_context(self, tiny_ctx):
        assert tiny_ctx.passflow() is tiny_ctx.passflow()

    def test_mask_variants_distinct(self, tiny_ctx):
        default = tiny_ctx.passflow()
        horizontal = tiny_ctx.passflow("horizontal")
        assert default is not horizontal
        assert default.config.mask_strategy != horizontal.config.mask_strategy

    def test_train_size_sweep_model(self, tiny_ctx):
        model = tiny_ctx.passflow_for_train_size(300)
        assert model.history.nll  # trained

    def test_train_size_exceeds_corpus_raises(self, tiny_ctx):
        with pytest.raises(ValueError):
            tiny_ctx.passflow_for_train_size(10**9)

    def test_markov_and_pcfg_available(self, tiny_ctx):
        assert tiny_ctx.markov().sample_passwords(3, np.random.default_rng(0))
        assert tiny_ctx.pcfg().sample_passwords(3, np.random.default_rng(0))

    def test_attack_rng_is_stable_per_label(self, tiny_ctx):
        a = tiny_ctx.attack_rng("x").normal()
        b = tiny_ctx.attack_rng("x").normal()
        assert a == b


class TestScheduleSelection:
    def test_default_is_static(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ATTACK_SCHEDULE", raising=False)
        assert EvalContext(PROFILES["tiny"], cache_dir=tmp_path).schedule == "static"

    def test_env_selects_elastic(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_SCHEDULE", "elastic")
        assert EvalContext(PROFILES["tiny"], cache_dir=tmp_path).schedule == "elastic"

    def test_argument_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_SCHEDULE", "elastic")
        ctx = EvalContext(PROFILES["tiny"], cache_dir=tmp_path, schedule="static")
        assert ctx.schedule == "static"

    def test_unknown_schedule_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_SCHEDULE", "eager")
        with pytest.raises(ValueError, match="schedule"):
            EvalContext(PROFILES["tiny"], cache_dir=tmp_path)

    def test_run_attack_routes_elastic_through_parallel_engine(
        self, tmp_path, monkeypatch
    ):
        """workers=1 + elastic must not fall back to the serial engine."""
        from repro.runtime import ParallelAttackEngine

        seen = {}
        original = ParallelAttackEngine.__init__

        def spy(self, *args, **kwargs):
            seen["schedule"] = kwargs.get("schedule")
            original(self, *args, **kwargs)

        monkeypatch.setattr(ParallelAttackEngine, "__init__", spy)
        monkeypatch.setattr(ParallelAttackEngine, "run", lambda self, *a, **k: "ran")
        ctx = EvalContext(PROFILES["tiny"], cache_dir=tmp_path, schedule="elastic")
        # corpus-only strategy: no model training needed for the routing check
        monkeypatch.setattr(
            EvalContext, "test_set", property(lambda self: {"pw1", "pw2"})
        )
        assert ctx.run_attack("markov:2", label="route-check") == "ran"
        assert seen["schedule"] == "elastic"

"""Cross-corpus seam: corpus variants, dataset wiring, matrix driver.

Covers the harness-side contracts the scenario matrix stands on:

* corpus variants are deterministic per name and never perturb the
  default corpus bytes (seed-era reports stay byte-identical);
* the test slice comes from the *target* corpus while cleaning runs
  against the *training* corpus only;
* model caches are keyed train-side only, so every (target, policy)
  context shares one set of trained artifacts;
* ``run_matrix`` emits the documented schema with exact transfer-delta
  arithmetic, deterministically.
"""

from __future__ import annotations

import pytest

from repro.data.dataset import clean_test_set
from repro.eval.experiments.cross_corpus import SCHEMA, result_table, run_matrix
from repro.eval.harness import CORPUS_VARIANTS, PROFILES, EvalContext


@pytest.fixture
def tiny():
    return PROFILES["tiny"]


class TestCorpusVariants:
    def test_variants_are_deterministic_per_name(self, tiny, tmp_path):
        a = EvalContext(tiny, cache_dir=tmp_path)
        b = EvalContext(tiny, cache_dir=tmp_path)
        for name in CORPUS_VARIANTS:
            assert a.corpus_variant(name) == b.corpus_variant(name)

    def test_default_variant_is_the_corpus(self, tiny, tmp_path):
        ctx = EvalContext(tiny, cache_dir=tmp_path)
        assert ctx.corpus_variant(None) is ctx.corpus
        assert ctx.corpus_variant("default") is ctx.corpus

    def test_target_corpus_never_perturbs_the_default(self, tiny, tmp_path):
        """Adding variants must not shift the default corpus stream."""
        plain = EvalContext(tiny, cache_dir=tmp_path)
        targeted = EvalContext(tiny, cache_dir=tmp_path, target_corpus="narrow")
        assert targeted.corpus == plain.corpus

    def test_variants_actually_differ(self, tiny, tmp_path):
        ctx = EvalContext(tiny, cache_dir=tmp_path)
        assert ctx.corpus_variant("narrow") != ctx.corpus
        assert ctx.corpus_variant("digits") != ctx.corpus

    def test_unknown_variant_rejected(self, tiny, tmp_path):
        ctx = EvalContext(tiny, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="unknown corpus variant"):
            ctx.corpus_variant("mystery")
        with pytest.raises(ValueError, match="unknown target corpus"):
            EvalContext(tiny, cache_dir=tmp_path, target_corpus="mystery")


class TestCrossCorpusDataset:
    def test_test_slice_comes_from_target_corpus(self, tiny, tmp_path):
        ctx = EvalContext(tiny, cache_dir=tmp_path, target_corpus="digits")
        target = ctx.corpus_variant("digits")
        expected_raw = target[len(target) - tiny.test_size :]
        assert ctx.dataset.test_raw == expected_raw

    def test_cleaning_runs_against_training_corpus_only(self, tiny, tmp_path):
        """A password leaked in the target's own head stays a fair target."""
        ctx = EvalContext(tiny, cache_dir=tmp_path, target_corpus="digits")
        train = ctx.corpus[: tiny.train_size]
        target = ctx.corpus_variant("digits")
        expected = clean_test_set(ctx.dataset.test_raw, train)
        assert ctx.dataset.test == expected
        # the discriminating case: passwords appearing in the *target*
        # corpus head (its would-be train side) but not in the actual
        # training corpus must survive cleaning
        target_head = set(target[: tiny.train_size]) - set(train)
        kept = [p for p in ctx.dataset.test if p in target_head]
        assert kept, "expected at least one target-head-only test password"

    def test_model_cache_is_keyed_train_side_only(self, tiny, tmp_path):
        """All (target, policy) contexts share one trained-model cache."""
        plain = EvalContext(tiny, cache_dir=tmp_path)
        crossed = EvalContext(
            tiny,
            cache_dir=tmp_path,
            target_corpus="digits",
            policy="min_len=6&classes=ld",
        )
        role = "passflow-char-run-1"
        assert plain._cache_path(role) == crossed._cache_path(role)
        plain.passflow()
        assert plain._cache_path(role).exists()
        # the crossed context must load, not retrain: identical weights
        a = plain.passflow()
        b = crossed.passflow()
        assert a.config.seed == b.config.seed
        assert ctx_logp(a) == ctx_logp(b)

    def test_policy_filters_the_test_set(self, tiny, tmp_path):
        ctx = EvalContext(
            tiny, cache_dir=tmp_path, policy="min_len=6&classes=ld"
        )
        assert ctx.dataset.test
        assert all(ctx.policy.conforms(p) for p in ctx.dataset.test)


def ctx_logp(model) -> float:
    """A cheap weight fingerprint: log-prob of a fixed password."""
    return float(model.log_prob(["monkey12"])[0])


class TestRunMatrix:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("xc-cache")
        kwargs = dict(
            specs={"markov3": "markov:3"},
            corpora=["digits"],
            policies={"none": None, "ld6": "min_len=6&classes=ld"},
            settings=PROFILES["tiny"],
            cache_dir=cache,
        )
        return run_matrix(**kwargs), run_matrix(**kwargs)

    def test_schema_and_cell_keys(self, report):
        first, _ = report
        assert first["schema"] == SCHEMA
        assert first["train_corpus"] == "default"
        assert first["corpora"] == ["default", "digits"]
        assert len(first["cells"]) == 4  # 1 spec x 2 policies x 2 targets
        for cell in first["cells"]:
            assert cell.keys() >= {
                "label",
                "base_spec",
                "spec",
                "policy",
                "policy_query",
                "train_corpus",
                "target_corpus",
                "test_size",
                "rows",
                "match_percent",
                "baseline_match_percent",
                "transfer_delta",
            }
            assert cell["rows"], "every cell carries its per-budget rows"

    def test_transfer_delta_arithmetic(self, report):
        first, _ = report
        baselines = {
            (cell["label"], cell["policy"]): cell["match_percent"]
            for cell in first["cells"]
            if cell["target_corpus"] == "default"
        }
        for cell in first["cells"]:
            base = baselines[(cell["label"], cell["policy"])]
            assert cell["baseline_match_percent"] == base
            assert cell["transfer_delta"] == cell["match_percent"] - base
            if cell["target_corpus"] == "default":
                assert cell["transfer_delta"] == 0.0

    def test_policy_cells_wrap_the_spec(self, report):
        first, _ = report
        for cell in first["cells"]:
            if cell["policy"] == "ld6":
                assert cell["spec"].startswith("policy(markov:3)")
            else:
                assert cell["spec"] == cell["base_spec"] == "markov:3"

    def test_matrix_is_deterministic(self, report):
        first, second = report
        assert first == second

    def test_result_table_covers_every_cell(self, report):
        first, _ = report
        table = result_table(first)
        assert len(table.rows) == len(first["cells"])
        assert table.notes["schema"] == SCHEMA

"""Guess-number curve utilities."""

import pytest

from repro.core.guesser import BudgetRow, GuessingReport
from repro.eval.curves import curve_dict, curves_to_csv, log_budgets, write_curves


def make_report(method="m"):
    return GuessingReport(
        method=method,
        test_size=100,
        rows=[BudgetRow(100, 90, 1, 1.0), BudgetRow(1000, 800, 5, 5.0)],
    )


class TestLogBudgets:
    def test_single_point_per_decade(self):
        assert log_budgets(10000, points_per_decade=1) == [100, 1000, 10000]

    def test_endpoint_always_included(self):
        budgets = log_budgets(5000, points_per_decade=1)
        assert budgets[-1] == 5000

    def test_strictly_increasing(self):
        budgets = log_budgets(100000, points_per_decade=4)
        assert budgets == sorted(set(budgets))

    def test_validation(self):
        with pytest.raises(ValueError):
            log_budgets(50)
        with pytest.raises(ValueError):
            log_budgets(1000, points_per_decade=0)


class TestCSV:
    def test_header_and_rows(self):
        csv_text = curves_to_csv([make_report("a"), make_report("b")])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "method,guesses,unique,matched,match_percent"
        assert len(lines) == 5
        assert lines[1].startswith("a,100,90,1")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            curves_to_csv([])

    def test_write_creates_dirs(self, tmp_path):
        path = write_curves([make_report()], tmp_path / "deep" / "curves.csv")
        assert path.exists()
        assert "matched" in path.read_text()


class TestCurveDict:
    def test_mapping(self):
        assert curve_dict(make_report()) == {100: 1, 1000: 5}

"""Multi-seed aggregation statistics."""

import pytest

from repro.core.guesser import BudgetRow, GuessingReport
from repro.eval.stats import aggregate_matched, aggregate_unique, run_seeds


def report(matched, unique=100):
    return GuessingReport(
        method="m", test_size=1000,
        rows=[BudgetRow(100, unique, matched, matched / 10.0)],
    )


class TestAggregate:
    def test_mean_and_std(self):
        stats = aggregate_matched([report(2), report(4), report(6)])
        assert stats.mean_at(100) == 4.0
        assert stats.std[100] == 2.0
        assert stats.minimum[100] == 2.0 and stats.maximum[100] == 6.0
        assert stats.runs == 3

    def test_single_run_zero_std(self):
        stats = aggregate_matched([report(5)])
        assert stats.std[100] == 0.0
        low, high = stats.interval_at(100)
        assert low == high == 5.0

    def test_interval_contains_mean(self):
        stats = aggregate_matched([report(2), report(8)])
        low, high = stats.interval_at(100)
        assert low <= stats.mean_at(100) <= high

    def test_unique_aggregation(self):
        stats = aggregate_unique([report(0, unique=50), report(0, unique=70)])
        assert stats.mean_at(100) == 60.0

    def test_mismatched_budgets_raise(self):
        other = GuessingReport(
            method="m", test_size=1000, rows=[BudgetRow(999, 1, 1, 0.1)]
        )
        with pytest.raises(ValueError):
            aggregate_matched([report(1), other])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_matched([])


class TestRunSeeds:
    def test_factory_invoked_per_seed(self):
        seen = []

        def factory(seed):
            seen.append(seed)
            return report(seed)

        reports = run_seeds(factory, 4)
        assert seen == [0, 1, 2, 3]
        assert len(reports) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            run_seeds(lambda seed: report(0), 0)

"""Evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    cluster_separation,
    guess_overlap,
    is_plausible,
    match_rate,
    plausibility_rate,
    uniqueness_rate,
)


class TestRates:
    def test_match_rate(self):
        assert match_rate(5, 100) == 5.0

    def test_match_rate_validation(self):
        with pytest.raises(ValueError):
            match_rate(1, 0)
        with pytest.raises(ValueError):
            match_rate(-1, 10)

    def test_uniqueness_rate(self):
        assert uniqueness_rate(80, 100) == 0.8

    def test_uniqueness_validation(self):
        with pytest.raises(ValueError):
            uniqueness_rate(1, 0)


class TestPlausibility:
    @pytest.mark.parametrize(
        "password",
        ["love", "love12", "Maria99", "123456", "l0v3r5", "star77!"],
    )
    def test_human_like_accepted(self, password):
        assert is_plausible(password)

    @pytest.mark.parametrize("password", ["x", "@@##!!", "A1!B2@C3#X", ""])
    def test_noise_rejected(self, password):
        assert not is_plausible(password)

    def test_rate(self):
        assert plausibility_rate(["love12", "@@@@@@"]) == 0.5

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            plausibility_rate([])


class TestClusterSeparation:
    def test_separated_clusters_high_ratio(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(30, 3))
        b = rng.normal(size=(30, 3)) + 50.0
        points = np.vstack([a, b])
        labels = np.array([0] * 30 + [1] * 30)
        assert cluster_separation(points, labels) > 10

    def test_mixed_clusters_low_ratio(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(60, 3))
        labels = np.array([0] * 30 + [1] * 30)
        assert cluster_separation(points, labels) < 2

    def test_needs_two_clusters(self):
        with pytest.raises(ValueError):
            cluster_separation(np.zeros((5, 2)), np.zeros(5))


class TestOverlap:
    def test_jaccard(self):
        assert guess_overlap(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_disjoint(self):
        assert guess_overlap(["a"], ["b"]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            guess_overlap([], [])

"""Module registration, traversal, modes and checkpointing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = Parameter(np.ones(2))
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc(x) * self.scale


class TestRegistration:
    def test_parameters_include_submodules(self):
        names = dict(Toy().named_parameters())
        assert set(names) == {"fc.weight", "fc.bias", "scale"}

    def test_buffers_registered(self):
        names = dict(Toy().named_buffers())
        assert "counter" in names

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 3 * 2 + 2 + 2

    def test_modules_iterates_tree(self):
        toy = Toy()
        assert sum(1 for _ in toy.modules()) == 2

    def test_add_module_explicit(self):
        toy = Toy()
        toy.add_module("extra", Linear(2, 2, rng=np.random.default_rng(1)))
        assert "extra.weight" in dict(toy.named_parameters())


class TestModes:
    def test_train_eval_propagates(self):
        toy = Toy()
        toy.eval()
        assert not toy.training and not toy.fc.training
        toy.train()
        assert toy.training and toy.fc.training

    def test_zero_grad_clears_all(self):
        toy = Toy()
        out = toy(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert toy.scale.grad is not None
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self):
        toy_a, toy_b = Toy(), Toy()
        toy_a.scale.data[:] = 7.0
        toy_b.load_state_dict(toy_a.state_dict())
        assert np.allclose(toy_b.scale.data, 7.0)
        assert np.allclose(toy_b.fc.weight.data, toy_a.fc.weight.data)

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"][:] = 99.0
        assert not np.allclose(toy.scale.data, 99.0)

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_extra_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_buffer_roundtrip(self):
        toy_a, toy_b = Toy(), Toy()
        toy_a.counter[:] = 5.0
        toy_b.load_state_dict(toy_a.state_dict())
        assert np.allclose(toy_b.counter, 5.0)


class TestSequential:
    def test_forward_chains(self):
        seq = Sequential(Linear(3, 4, rng=np.random.default_rng(0)), ReLU())
        out = seq(Tensor(np.random.randn(2, 3)))
        assert out.shape == (2, 4)
        assert np.all(out.data >= 0)

    def test_len_iter_getitem(self):
        seq = Sequential(ReLU(), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)
        assert len(list(seq)) == 2

"""Layer semantics and gradient checks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients
from repro.nn import (
    BatchNorm1d,
    LayerNorm,
    LeakyReLU,
    Linear,
    ResidualBlock,
    ResidualMLP,
    Sigmoid,
    Softplus,
    Tanh,
)
from repro.nn import init as init_schemes
from repro.nn.losses import binary_cross_entropy_with_logits, mse_loss


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        assert layer(Tensor(np.random.randn(5, 4))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradients(self):
        layer = Linear(3, 2, rng=np.random.default_rng(1))
        x = np.random.randn(4, 3)
        out = layer(Tensor(x))
        out.sum().backward()
        assert layer.weight.grad.shape == (3, 2)
        assert np.allclose(layer.bias.grad, 4.0)  # d(sum)/db = batch size

    def test_deterministic_with_rng(self):
        a = Linear(3, 3, rng=np.random.default_rng(5))
        b = Linear(3, 3, rng=np.random.default_rng(5))
        assert np.allclose(a.weight.data, b.weight.data)


class TestInit:
    def test_xavier_bound(self):
        w = init_schemes.xavier_uniform(np.random.default_rng(0), 10, 10)
        assert np.max(np.abs(w)) <= np.sqrt(6 / 20)

    def test_zeros(self):
        assert np.all(init_schemes.zeros(np.random.default_rng(0), 3, 4) == 0)

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            init_schemes.get("nope")


class TestActivations:
    def test_leaky_relu_negative_slope(self):
        act = LeakyReLU(0.1)
        out = act(Tensor([-2.0, 3.0]))
        assert np.allclose(out.data, [-0.2, 3.0])

    def test_tanh_sigmoid_softplus_ranges(self):
        x = Tensor(np.random.randn(10))
        assert np.all(np.abs(Tanh()(x).data) < 1)
        assert np.all((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1))
        assert np.all(Softplus()(x).data > 0)


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = BatchNorm1d(3)
        x = np.random.randn(64, 3) * 5 + 2
        out = bn(Tensor(x))
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)  # running stats = last batch
        x = np.random.randn(32, 2) * 3 + 1
        bn(Tensor(x))
        bn.eval()
        single = bn(Tensor(x[:1]))
        expected = (x[:1] - x.mean(axis=0)) / np.sqrt(x.var(axis=0) + bn.eps)
        assert np.allclose(single.data, expected, atol=1e-6)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.zeros((2, 4))))

    def test_gradients(self):
        bn = BatchNorm1d(3)
        check_gradients(lambda a: bn(a), [np.random.randn(8, 3)], atol=1e-4)


class TestLayerNorm:
    def test_normalizes_rows(self):
        ln = LayerNorm(4)
        out = ln(Tensor(np.random.randn(5, 4) * 3 + 7))
        assert np.allclose(out.data.mean(axis=1), 0.0, atol=1e-7)

    def test_wrong_trailing_dim_raises(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.zeros((2, 3))))

    def test_gradients(self):
        ln = LayerNorm(3)
        check_gradients(lambda a: ln(a), [np.random.randn(4, 3)], atol=1e-4)


class TestResidual:
    def test_block_preserves_shape(self):
        block = ResidualBlock(8, rng=np.random.default_rng(0))
        assert block(Tensor(np.random.randn(3, 8))).shape == (3, 8)

    def test_mlp_identity_at_init(self):
        # zero-initialized output head -> ResidualMLP(x) == 0 at init
        mlp = ResidualMLP(4, 16, 4, rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.randn(5, 4)))
        assert np.allclose(out.data, 0.0)

    def test_mlp_gradients(self):
        mlp = ResidualMLP(3, 8, 2, num_blocks=1, rng=np.random.default_rng(2))
        # perturb output head so gradients are non-trivial
        mlp.output.weight.data[:] = np.random.default_rng(3).normal(size=(8, 2)) * 0.1
        check_gradients(lambda a: mlp(a), [np.random.randn(4, 3)], atol=1e-4)

    def test_mlp_requires_block(self):
        with pytest.raises(ValueError):
            ResidualMLP(3, 8, 2, num_blocks=0)


class TestLosses:
    def test_mse_zero_for_equal(self):
        x = Tensor(np.random.randn(4))
        assert mse_loss(x, Tensor(x.data.copy())).item() == 0.0

    def test_mse_gradcheck(self):
        target = np.random.randn(5)
        check_gradients(lambda a: mse_loss(a, Tensor(target)), [np.random.randn(5)])

    def test_bce_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0])
        target = np.array([0.0, 1.0, 1.0])
        p = 1 / (1 + np.exp(-logits))
        expected = -np.mean(target * np.log(p) + (1 - target) * np.log(1 - p))
        got = binary_cross_entropy_with_logits(Tensor(logits), Tensor(target)).item()
        assert abs(got - expected) < 1e-9

    def test_bce_extreme_logits_stable(self):
        out = binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), Tensor([1.0, 0.0])
        )
        assert np.isfinite(out.item()) and out.item() < 1e-6

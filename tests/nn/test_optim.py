"""Optimizer and scheduler behaviour."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, CosineDecay, StepDecay


def quadratic_loss(param: Parameter) -> Tensor:
    # f(w) = sum((w - 3)^2), minimized at w = 3
    diff = param - Tensor(np.full_like(param.data, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_direction(self):
        w = Parameter(np.zeros(2))
        opt = SGD([w], lr=0.1)
        quadratic_loss(w).backward()
        opt.step()
        assert np.all(w.data > 0)  # moved toward 3

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.zeros(1))
        w_momentum = Parameter(np.zeros(1))
        opt_plain = SGD([w_plain], lr=0.01)
        opt_momentum = SGD([w_momentum], lr=0.01, momentum=0.9)
        for _ in range(10):
            for w, opt in ((w_plain, opt_plain), (w_momentum, opt_momentum)):
                opt.zero_grad()
                quadratic_loss(w).backward()
                opt.step()
        assert w_momentum.data[0] > w_plain.data[0]

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(3))
        opt = Adam([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(w).backward()
            opt.step()
        assert np.allclose(w.data, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        # with Adam, first-step update magnitude ~ lr regardless of grad scale
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=0.5)
        (w * 1000.0).sum().backward()
        opt.step()
        assert abs(w.data[0] + 0.5) < 1e-6

    def test_weight_decay_shrinks(self):
        w = Parameter(np.ones(1) * 10.0)
        opt = Adam([w], lr=0.1, weight_decay=1.0)
        (w * 0.0).sum().backward()  # zero task gradient
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 10.0

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))


class TestOptimizerBase:
    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_grad_clipping_bounds_norm(self):
        w = Parameter(np.zeros(4))
        opt = SGD([w], lr=1.0, clip_norm=1.0)
        (w * 100.0).sum().backward()
        opt._clip()
        assert abs(opt.grad_global_norm() - 1.0) < 1e-9

    def test_step_skips_gradless_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.ones(1))
        opt = SGD([a, b], lr=0.5)
        (a * 2.0).sum().backward()
        opt.step()
        assert np.allclose(b.data, 1.0)  # untouched


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_decay(self):
        opt = self._optimizer()
        sched = StepDecay(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_reaches_min(self):
        opt = self._optimizer()
        sched = CosineDecay(opt, total_epochs=10, min_lr=0.05)
        for _ in range(10):
            last = sched.step()
        assert abs(last - 0.05) < 1e-9

    def test_cosine_monotone_decreasing(self):
        opt = self._optimizer()
        sched = CosineDecay(opt, total_epochs=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StepDecay(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineDecay(self._optimizer(), total_epochs=0)

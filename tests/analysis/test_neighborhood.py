"""Neighbourhood sampling and edit distance."""

import numpy as np
import pytest

from repro.analysis.neighborhood import (
    edit_distance,
    mean_edit_distance,
    neighborhood_cloud,
    neighborhood_samples,
    sigma_sweep,
)


class TestEditDistance:
    def test_identity(self):
        assert edit_distance("love", "love") == 0

    def test_substitution(self):
        assert edit_distance("love", "lave") == 1

    def test_insert_delete(self):
        assert edit_distance("love", "loves") == 1
        assert edit_distance("loves", "love") == 1

    def test_symmetry(self):
        assert edit_distance("abc", "xyz") == edit_distance("xyz", "abc")

    def test_known_value(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_empty(self):
        assert edit_distance("", "abc") == 3

    def test_mean_requires_samples(self):
        with pytest.raises(ValueError):
            mean_edit_distance("x", [])


class TestNeighborhoodSamples:
    def test_returns_unique(self, trained_model):
        samples = neighborhood_samples(
            trained_model, "love12", 0.1, np.random.default_rng(0), unique_count=8
        )
        assert len(samples) == len(set(samples)) <= 8

    def test_small_sigma_stays_close(self, trained_model):
        samples = neighborhood_samples(
            trained_model, "love12", 0.05, np.random.default_rng(1), unique_count=6
        )
        assert samples
        assert mean_edit_distance("love12", samples) <= 4.0

    def test_sigma_increases_drift(self, trained_model):
        rng = np.random.default_rng(2)
        close = neighborhood_samples(trained_model, "maria12", 0.03, rng, unique_count=8)
        far = neighborhood_samples(trained_model, "maria12", 0.5, rng, unique_count=8)
        assert mean_edit_distance("maria12", close) < mean_edit_distance("maria12", far)

    def test_validation(self, trained_model):
        with pytest.raises(ValueError):
            neighborhood_samples(trained_model, "x", 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            neighborhood_samples(trained_model, "x", 0.1, np.random.default_rng(0), unique_count=0)


class TestSigmaSweep:
    def test_all_sigmas_present(self, trained_model):
        sweep = sigma_sweep(
            trained_model, "love12", [0.05, 0.1], np.random.default_rng(0), unique_count=4
        )
        assert set(sweep) == {0.05, 0.1}
        assert all(len(v) <= 4 for v in sweep.values())


class TestCloud:
    def test_shapes_and_labels(self, trained_model):
        latents, labels, decoded = neighborhood_cloud(
            trained_model, ["love12", "maria9"], 0.08, 10, np.random.default_rng(0)
        )
        assert latents.shape == (20, 10)
        assert list(np.bincount(labels)) == [10, 10]
        assert len(decoded) == 20

    def test_clusters_separate_in_latent_space(self, trained_model):
        from repro.eval.metrics import cluster_separation

        latents, labels, _ = neighborhood_cloud(
            trained_model, ["love12", "qwerty"], 0.05, 30, np.random.default_rng(1)
        )
        assert cluster_separation(latents, labels) > 1.5

    def test_validation(self, trained_model):
        with pytest.raises(ValueError):
            neighborhood_cloud(trained_model, ["x"], 0.1, 0, np.random.default_rng(0))

"""Exact t-SNE implementation."""

import numpy as np
import pytest

from repro.analysis.tsne import TSNE, _joint_probabilities, _pairwise_sq_dists


class TestInternals:
    def test_pairwise_distances(self):
        x = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = _pairwise_sq_dists(x)
        assert np.allclose(d, [[0.0, 25.0], [25.0, 0.0]])

    def test_joint_probabilities_symmetric_and_normalized(self):
        x = np.random.randn(20, 3)
        p = _joint_probabilities(x, perplexity=5.0)
        assert np.allclose(p, p.T)
        assert abs(p.sum() - 1.0) < 1e-9
        assert np.all(p > 0)


class TestEmbedding:
    def _two_clusters(self, n=25, gap=20.0, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, 5))
        b = rng.normal(size=(n, 5)) + gap
        return np.vstack([a, b]), np.array([0] * n + [1] * n)

    def test_separates_well_separated_clusters(self):
        x, labels = self._two_clusters()
        embedding = TSNE(perplexity=10, n_iter=250, seed=1).fit_transform(x)
        centroid_a = embedding[labels == 0].mean(axis=0)
        centroid_b = embedding[labels == 1].mean(axis=0)
        spread = max(embedding[labels == 0].std(), embedding[labels == 1].std())
        assert np.linalg.norm(centroid_a - centroid_b) > 2 * spread

    def test_output_shape_and_centering(self):
        x, _ = self._two_clusters(n=10)
        embedding = TSNE(perplexity=5, n_iter=50).fit_transform(x)
        assert embedding.shape == (20, 2)
        assert np.allclose(embedding.mean(axis=0), 0.0, atol=1e-8)

    def test_kl_better_than_random_layout(self):
        x, _ = self._two_clusters(n=15)
        tsne = TSNE(perplexity=8, n_iter=200, seed=2)
        embedding = tsne.fit_transform(x)
        random_layout = np.random.default_rng(3).normal(size=embedding.shape)
        assert tsne.kl_divergence(x, embedding) < tsne.kl_divergence(x, random_layout)

    def test_deterministic_with_seed(self):
        x, _ = self._two_clusters(n=8)
        a = TSNE(perplexity=4, n_iter=50, seed=7).fit_transform(x)
        b = TSNE(perplexity=4, n_iter=50, seed=7).fit_transform(x)
        assert np.allclose(a, b)


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((2, 3)))

    def test_perplexity_bound(self):
        with pytest.raises(ValueError):
            TSNE(perplexity=10).fit_transform(np.zeros((5, 3)))

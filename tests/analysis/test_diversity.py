"""Diversity/footprint diagnostics."""

import pytest

from repro.analysis.diversity import (
    charclass_distribution,
    compare_to_corpus,
    length_distribution,
    structure_distribution,
    top_structures,
    total_variation,
)


class TestDistributions:
    def test_structure(self):
        dist = structure_distribution(["love12", "star99"])
        assert dist == {"L4 D2": 1.0}

    def test_length(self):
        dist = length_distribution(["ab", "abc", "ab"])
        assert dist == {"2": 2 / 3, "3": 1 / 3}

    def test_charclass(self):
        dist = charclass_distribution(["ab1!"])
        assert dist == {"letter": 0.5, "digit": 0.25, "symbol": 0.25}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            structure_distribution([])


class TestTotalVariation:
    def test_identical_is_zero(self):
        p = {"a": 0.5, "b": 0.5}
        assert total_variation(p, dict(p)) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == 1.0

    def test_symmetric(self):
        p, q = {"a": 0.7, "b": 0.3}, {"a": 0.2, "b": 0.8}
        assert total_variation(p, q) == total_variation(q, p)


class TestCompare:
    def test_same_corpus_near_zero(self, corpus):
        report = compare_to_corpus(corpus[:1000], corpus[:1000])
        assert report.overall() < 1e-12

    def test_disjoint_shapes_high(self, corpus):
        digits_only = [str(i).zfill(8) for i in range(500)]
        report = compare_to_corpus(digits_only, corpus[:1000])
        assert report.structure_tv > 0.5
        assert report.charclass_tv > 0.3

    def test_unique_fraction(self):
        report = compare_to_corpus(["aa", "aa", "bb", "cc"], ["aa", "bb"])
        assert report.unique_fraction == 0.75

    def test_validation(self, corpus):
        with pytest.raises(ValueError):
            compare_to_corpus([], corpus)

    def test_model_guesses_close_to_corpus(self, trained_model, corpus):
        # the trained flow's samples should structurally resemble training data
        from repro.flows.priors import StandardNormalPrior
        import numpy as np

        samples = trained_model.sample_passwords(
            1000, rng=np.random.default_rng(0), prior=StandardNormalPrior(10, sigma=0.7)
        )
        report = compare_to_corpus([s for s in samples if s], corpus)
        assert report.length_tv < 0.6
        assert report.charclass_tv < 0.5


class TestTopStructures:
    def test_top_limit_and_ordering(self, corpus):
        top = top_structures(corpus, top=3)
        assert len(top) == 3
        values = list(top.values())
        assert values == sorted(values, reverse=True)

"""PCA projection."""

import numpy as np
import pytest

from repro.analysis.projection import PCA


class TestPCA:
    def test_recovers_dominant_axis(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=500)
        x = np.stack([t * 10, t * 0.1 + rng.normal(size=500) * 0.01], axis=1)
        pca = PCA(1).fit(x)
        axis = pca.components_[0] / np.linalg.norm(pca.components_[0])
        assert abs(abs(axis[0]) - 1.0) < 1e-2  # first axis dominates

    def test_explained_variance_sums_below_one(self):
        x = np.random.default_rng(1).normal(size=(100, 5))
        pca = PCA(2).fit(x)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0

    def test_transform_shape(self):
        x = np.random.default_rng(2).normal(size=(40, 6))
        assert PCA(3).fit_transform(x).shape == (40, 3)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((3, 4)))

    def test_component_bound(self):
        with pytest.raises(ValueError):
            PCA(5).fit(np.zeros((3, 4)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(1).fit(np.zeros((1, 4)))

    def test_centered_projection(self):
        x = np.random.default_rng(3).normal(size=(50, 4)) + 100.0
        projected = PCA(2).fit_transform(x)
        assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-9)

"""Progress reporting and logging helpers."""

import logging

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.progress import ProgressReporter


class TestLogging:
    def test_namespaced(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger().name == "repro"

    def test_null_handler_installed(self):
        get_logger()
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_enable_console_idempotent(self):
        enable_console_logging()
        enable_console_logging()
        root = logging.getLogger("repro")
        streams = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        assert len(streams) == 1


class TestProgress:
    def test_rate_limited_emission(self):
        messages = []
        reporter = ProgressReporter(total=100, interval=9999, sink=messages.append)
        for _ in range(50):
            reporter.update()
        assert messages == []  # interval never elapsed
        reporter.close("done")
        assert len(messages) == 1
        assert "50" in messages[0] and "done" in messages[0]

    def test_immediate_emission_with_zero_interval(self):
        messages = []
        reporter = ProgressReporter(interval=0.0, sink=messages.append, label="train")
        reporter.update(3)
        assert messages and "train" in messages[0]

    def test_counts_accumulate(self):
        reporter = ProgressReporter(interval=9999, sink=lambda m: None)
        reporter.update(10)
        reporter.update(5)
        assert reporter.count == 15

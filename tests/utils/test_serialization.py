"""Checkpoint IO."""

import numpy as np
import pytest

from repro.utils.serialization import load_checkpoint, save_checkpoint


class TestRoundtrip:
    def test_state_and_metadata(self, tmp_path):
        state = {"w": np.random.randn(3, 4), "b": np.zeros(4)}
        metadata = {"epochs": 10, "name": "demo"}
        path = save_checkpoint(tmp_path / "model.npz", state, metadata)
        loaded_state, loaded_meta = load_checkpoint(path)
        assert set(loaded_state) == {"w", "b"}
        assert np.allclose(loaded_state["w"], state["w"])
        assert loaded_meta == metadata

    def test_no_metadata(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"x": np.ones(2)})
        _, metadata = load_checkpoint(path)
        assert metadata == {}

    def test_suffix_appended(self, tmp_path):
        save_checkpoint(tmp_path / "model.ckpt", {"x": np.ones(1)})
        state, _ = load_checkpoint(tmp_path / "model.ckpt")
        assert "x" in state

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "m.npz", {"__metadata__": np.ones(1)})

    def test_creates_parent_dirs(self, tmp_path):
        path = save_checkpoint(tmp_path / "deep" / "dir" / "m.npz", {"x": np.ones(1)})
        assert path.exists()

    def test_nested_metadata(self, tmp_path):
        metadata = {"config": {"lr": 0.1, "layers": [1, 2, 3]}}
        path = save_checkpoint(tmp_path / "m.npz", {"x": np.ones(1)}, metadata)
        _, loaded = load_checkpoint(path)
        assert loaded["config"]["layers"] == [1, 2, 3]

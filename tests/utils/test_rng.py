"""Seeded RNG plumbing."""

import numpy as np

from repro.utils.rng import RngStream, spawn_rng


class TestSpawn:
    def test_same_seed_label_reproducible(self):
        assert spawn_rng(1, "x").normal() == spawn_rng(1, "x").normal()

    def test_labels_independent(self):
        assert spawn_rng(1, "a").normal() != spawn_rng(1, "b").normal()

    def test_seeds_independent(self):
        assert spawn_rng(1, "a").normal() != spawn_rng(2, "a").normal()


class TestStream:
    def test_get_is_memoized(self):
        streams = RngStream(0)
        assert streams.get("w") is streams.get("w")

    def test_fresh_resets(self):
        streams = RngStream(0)
        first = streams.get("w").normal()
        fresh = streams.fresh("w").normal()
        assert first == fresh  # reset stream replays from the start

    def test_distinct_names_distinct_streams(self):
        streams = RngStream(0)
        assert streams.get("a") is not streams.get("b")

    def test_cross_instance_reproducibility(self):
        a = RngStream(5).get("train").normal(size=4)
        b = RngStream(5).get("train").normal(size=4)
        assert np.allclose(a, b)

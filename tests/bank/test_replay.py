"""Replay layer: bit-identical reports, strided sharding, spec resolution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bank import (
    BankError,
    BankReplayStrategy,
    bank_path_for,
    replay_attack,
    resolve_bank,
    stream_samples,
)
from repro.bank.replay import BANK_DIR_ENV
from repro.data.alphabet import default_alphabet
from repro.strategies import SpecError, build


class TestSerialReplay:
    def test_report_matches_live_sampling(
        self, markov_bank, bank_split, bank_budgets, bank_seed, live_report
    ):
        _, test_set = bank_split
        replayed = replay_attack(markov_bank, test_set, bank_budgets, seed=bank_seed)
        assert replayed.as_dict() == live_report.as_dict()

    def test_method_name_matches_live(self, markov_bank, bank_split, live_report):
        _, test_set = bank_split
        replayed = replay_attack(markov_bank, test_set, [100])
        assert replayed.method == live_report.method == "Markov-3"

    def test_budget_beyond_bank_rejected(self, markov_bank, bank_split):
        _, test_set = bank_split
        with pytest.raises(BankError, match="cannot replay"):
            replay_attack(markov_bank, test_set, [markov_bank.total + 1])


class TestReplayEqualsLiveProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        workers=st.sampled_from([1, 2]),
        schedule=st.sampled_from(["static", "elastic"]),
    )
    def test_fleet_shape_never_changes_the_report(
        self,
        markov_bank,
        bank_split,
        bank_budgets,
        bank_seed,
        live_report,
        workers,
        schedule,
    ):
        """bank-replay == live-sampling for every (workers, schedule) pair.

        The live baseline is serial; the property is that replaying the
        banked stream under any fleet shape reproduces it bit for bit --
        rows, samples and method.
        """
        _, test_set = bank_split
        replayed = replay_attack(
            markov_bank,
            test_set,
            bank_budgets,
            workers=workers,
            schedule=schedule,
            seed=bank_seed,
        )
        assert replayed.as_dict() == live_report.as_dict()


class TestSharding:
    def test_strided_substreams_partition_the_prefix(self, markov_bank):
        """Shard i of W owns positions i, i+W, ...; unions rebuild prefixes."""
        workers = 3
        seen = []
        for index in range(workers):
            strategy = BankReplayStrategy(markov_bank, batch_size=64)
            strategy.bind_shard(index, workers)
            from repro.strategies.base import AttackContext

            strategy.bind(AttackContext(limit=markov_bank.total))
            for batch in strategy.iter_guesses(np.random.default_rng(0)):
                seen.append(
                    (index, markov_bank.codec.pack_indices(batch.index_matrix))
                )
        by_shard = {
            i: np.concatenate([k for j, k in seen if j == i]) for i in range(workers)
        }
        full = np.asarray(markov_bank.keys[:])
        for i in range(workers):
            assert np.array_equal(by_shard[i], full[i::workers])

    def test_bind_shard_validates_index(self, markov_bank):
        strategy = BankReplayStrategy(markov_bank)
        with pytest.raises(ValueError, match="outside"):
            strategy.bind_shard(2, 2)

    def test_rebind_mid_stream_rejected(self, markov_bank):
        from repro.strategies.base import AttackContext

        strategy = BankReplayStrategy(markov_bank, batch_size=16)
        strategy.bind(AttackContext(limit=32))
        next(strategy.iter_guesses(np.random.default_rng(0)))
        with pytest.raises(RuntimeError, match="mid-stream"):
            strategy.bind_shard(0, 2)

    def test_replay_streams_from_memmap(self, markov_bank):
        """Shard workers mmap the artifact; nothing loads the full array."""
        assert isinstance(markov_bank.keys, np.memmap)
        strategy = BankReplayStrategy(markov_bank, batch_size=32)
        from repro.strategies.base import AttackContext

        strategy.bind(AttackContext(limit=64))
        batch = next(strategy.iter_guesses(np.random.default_rng(0)))
        # the batch holds only its own rows, not the whole stream
        assert batch.index_matrix.shape[0] == 32
        assert isinstance(markov_bank.keys, np.memmap)


class TestStreamSamples:
    def test_matches_serial_sample_lists(
        self, markov_bank, bank_split, bank_budgets, live_report
    ):
        _, test_set = bank_split
        matched, non_matched = stream_samples(
            markov_bank, test_set, bank_budgets[-1]
        )
        assert matched == live_report.matched_samples
        assert non_matched == live_report.non_matched_samples


class TestSpecResolution:
    def test_variant_path_spec(self, markov_bank):
        strategy = build(f"bank:{markov_bank.path}")
        assert isinstance(strategy, BankReplayStrategy)
        assert strategy.name == "Markov-3"

    def test_variant_path_missing(self, tmp_path):
        with pytest.raises(SpecError, match="no bank"):
            build(f"bank:{tmp_path / 'nope.bank'}")

    def test_query_spec_with_dir(self, markov_bank, bank_seed):
        directory = markov_bank.path.parent
        strategy = build(
            f"bank?spec=markov:3&seed={bank_seed}&dir={directory}"
        )
        assert strategy.bank.path == markov_bank.path

    def test_query_spec_env_fallback(self, markov_bank, bank_seed, monkeypatch):
        monkeypatch.setenv(BANK_DIR_ENV, str(markov_bank.path.parent))
        strategy = build(f"bank?spec=markov:3&seed={bank_seed}")
        assert strategy.bank.total == markov_bank.total

    def test_query_spec_without_dir_rejected(self, monkeypatch):
        monkeypatch.delenv(BANK_DIR_ENV, raising=False)
        with pytest.raises(SpecError, match=BANK_DIR_ENV):
            build("bank?spec=markov:3")

    def test_query_spec_miss_rejected(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BANK_DIR_ENV, raising=False)
        with pytest.raises(SpecError, match="no bank for"):
            build(f"bank?spec=markov:9&seed=0&dir={tmp_path}")

    def test_alphabet_mismatch_rejected(self, markov_bank):
        with pytest.raises(SpecError, match="alphabet"):
            build(f"bank:{markov_bank.path}", alphabet=default_alphabet())


class TestResolveBank:
    def test_direct_path_hit(self, markov_bank, bank_seed, alphabet, tmp_path):
        directory = tmp_path / "named"
        target = bank_path_for(directory, "markov:3", bank_seed, "", alphabet.chars)
        target.mkdir(parents=True)
        for name in ("keys.npy", "segments.npy", "manifest.json"):
            (target / name).write_bytes((markov_bank.path / name).read_bytes())
        found = resolve_bank(directory, "markov:3", bank_seed, "", alphabet.chars)
        assert found is not None and found.path == target

    def test_scan_matches_foreign_names(self, markov_bank, bank_seed, tmp_path):
        foreign = tmp_path / "renamed.bank"
        foreign.mkdir()
        for name in ("keys.npy", "segments.npy", "manifest.json"):
            (foreign / name).write_bytes((markov_bank.path / name).read_bytes())
        found = resolve_bank(tmp_path, "markov:3", bank_seed)
        assert found is not None and found.path == foreign

    def test_miss_returns_none(self, tmp_path):
        assert resolve_bank(tmp_path, "markov:3", 0) is None

    def test_path_for_is_deterministic(self, tmp_path):
        a = bank_path_for(tmp_path, "markov:3", 7, "attack-t2", "abc")
        b = bank_path_for(tmp_path, "markov:3", 7, "attack-t2", "abc")
        assert a == b
        assert a != bank_path_for(tmp_path, "markov:3", 8, "attack-t2", "abc")

"""Artifact layer: codec headers, manifest validation, integrity checks."""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.bank import (
    BankError,
    GuessBank,
    codec_from_header,
    codec_header,
    same_codec,
    write_bank,
)
from repro.bank.artifact import KEYS_NAME, MANIFEST_NAME
from repro.data.alphabet import Alphabet
from repro.data.encoding import PasswordEncoder


class TestCodecHeader:
    def test_round_trip_rebuilds_identical_codec(self, bank_encoder):
        rebuilt = codec_from_header(codec_header(bank_encoder))
        assert same_codec(rebuilt, bank_encoder)
        assert rebuilt.pack_bits == bank_encoder.pack_bits
        assert rebuilt.alphabet.chars == bank_encoder.alphabet.chars

    def test_round_trip_preserves_keys(self, bank_encoder):
        """The rebuilt codec interns passwords to the very same uint64s."""
        rebuilt = codec_from_header(codec_header(bank_encoder))
        probe = ["alice99", "p4ssw0rd", "x", "0000000000"]
        original = bank_encoder.pack_passwords(probe)
        assert np.array_equal(rebuilt.pack_passwords(probe), original)
        assert rebuilt.strings_from_keys(original) == probe

    def test_round_trip_in_fresh_process(self, markov_bank):
        """A new interpreter rebuilds the codec from the manifest alone."""
        script = (
            "import json, sys, numpy as np\n"
            "from repro.bank import GuessBank\n"
            "bank = GuessBank.open(sys.argv[1])\n"
            "keys = np.asarray(bank.keys[:64])\n"
            "print(json.dumps(bank.codec.strings_from_keys(keys)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(markov_bank.path)],
            capture_output=True,
            text=True,
            check=True,
        )
        here = markov_bank.codec.strings_from_keys(
            np.asarray(markov_bank.keys[:64])
        )
        assert json.loads(out.stdout) == here

    def test_can_encode_contract_survives_round_trip(self, bank_encoder):
        """Over-length / out-of-alphabet filtering matches the original."""
        rebuilt = codec_from_header(codec_header(bank_encoder))
        too_long = "a" * (bank_encoder.max_length + 1)
        foreign = "päss"  # outside the compact alphabet
        fits = "a" * bank_encoder.max_length
        for password in (too_long, foreign, fits, "abc123"):
            assert rebuilt.can_encode(password) == bank_encoder.can_encode(password)
        assert not rebuilt.can_encode(too_long)
        assert not rebuilt.can_encode(foreign)
        assert rebuilt.can_encode(fits)

    def test_inconsistent_geometry_rejected(self, bank_encoder):
        header = codec_header(bank_encoder)
        header["pack_bits"] = int(header["pack_bits"]) + 1
        with pytest.raises(BankError, match="inconsistent"):
            codec_from_header(header)

    def test_unpackable_geometry_rejected(self):
        codec = PasswordEncoder(Alphabet("ab"), max_length=80)
        assert codec.pack_bits is None
        with pytest.raises(BankError, match="unpackable"):
            codec_from_header(
                {"alphabet": "ab", "max_length": 80, "pack_bits": 2, "vocab_size": 3}
            )

    def test_missing_field_rejected(self, bank_encoder):
        header = codec_header(bank_encoder)
        del header["alphabet"]
        with pytest.raises(BankError, match="codec header"):
            codec_from_header(header)


class TestWriteBank:
    def test_rejects_empty_stream(self, tmp_path, bank_encoder):
        with pytest.raises(BankError, match="non-empty"):
            write_bank(
                tmp_path / "e.bank",
                np.empty(0, dtype=np.uint64),
                [],
                codec=bank_encoder,
                spec="s",
                method="m",
                seed=0,
            )

    def test_rejects_bad_segment_table(self, tmp_path, bank_encoder):
        keys = bank_encoder.pack_passwords(["aa", "bb", "cc"])
        with pytest.raises(BankError, match="segment_ends"):
            write_bank(
                tmp_path / "s.bank",
                keys,
                [2, 2, 3],
                codec=bank_encoder,
                spec="s",
                method="m",
                seed=0,
            )

    def test_writes_are_byte_deterministic(self, tmp_path, bank_encoder):
        keys = bank_encoder.pack_passwords(["aa", "bb", "aa", "cc"])
        first = tmp_path / "a.bank"
        second = tmp_path / "b.bank"
        for out in (first, second):
            write_bank(
                out, keys, [2, 4], codec=bank_encoder, spec="s", method="m", seed=3
            )
        for name in (KEYS_NAME, MANIFEST_NAME):
            assert (first / name).read_bytes() == (second / name).read_bytes()


class TestOpenAndVerify:
    def test_open_memory_maps(self, markov_bank):
        bank = GuessBank.open(markov_bank.path)
        assert isinstance(bank.keys, np.memmap)
        assert bank.total == markov_bank.total
        assert bank.spec == "markov:3"
        assert bank.method == "Markov-3"

    def test_open_missing_path(self, tmp_path):
        with pytest.raises(BankError, match="no bank at"):
            GuessBank.open(tmp_path / "absent.bank")

    def test_open_rejects_foreign_manifest(self, tmp_path):
        path = tmp_path / "foreign.bank"
        path.mkdir()
        (path / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(BankError, match="manifest"):
            GuessBank.open(path)

    def test_open_rejects_total_mismatch(self, tmp_path, markov_bank):
        path = tmp_path / "short.bank"
        path.mkdir()
        for name in (KEYS_NAME, MANIFEST_NAME):
            (path / name).write_bytes((markov_bank.path / name).read_bytes())
        np.save(path / KEYS_NAME, np.asarray(markov_bank.keys[:10]))
        with pytest.raises(BankError, match="total"):
            GuessBank.open(path)

    def test_verify_clean_artifact(self, markov_bank):
        assert markov_bank.verify() == []

    def test_verify_flags_corrupt_keys(self, tmp_path, markov_bank):
        path = tmp_path / "corrupt.bank"
        path.mkdir()
        for name in (KEYS_NAME, MANIFEST_NAME, "segments.npy"):
            (path / name).write_bytes((markov_bank.path / name).read_bytes())
        keys = np.load(path / KEYS_NAME)
        keys[5] = np.uint64(2**63)  # garbage outside the pack geometry
        np.save(path / KEYS_NAME, keys)
        problems = GuessBank.open(path).verify()
        assert any("checksum" in p for p in problems)
        assert any("non-canonical" in p for p in problems)

"""EvalContext bank_dir: build-on-miss, replay reuse, live fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import PROFILES, EvalContext


@pytest.fixture
def harness_test_set(corpus, monkeypatch):
    """Pin the context test set to corpus passwords (no model training)."""
    targets = set(corpus[2000:2400])
    monkeypatch.setattr(EvalContext, "test_set", property(lambda self: targets))
    return targets


class TestBankDirSelection:
    def test_default_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_GUESS_BANK", raising=False)
        assert EvalContext(PROFILES["tiny"], cache_dir=tmp_path).bank_dir is None

    def test_env_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GUESS_BANK", str(tmp_path / "banks"))
        ctx = EvalContext(PROFILES["tiny"], cache_dir=tmp_path)
        assert ctx.bank_dir == tmp_path / "banks"

    def test_argument_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GUESS_BANK", str(tmp_path / "env"))
        ctx = EvalContext(
            PROFILES["tiny"], cache_dir=tmp_path, bank_dir=tmp_path / "arg"
        )
        assert ctx.bank_dir == tmp_path / "arg"


class TestBankedRuns:
    def test_banked_replay_matches_live(self, tmp_path, harness_test_set):
        """First banked run builds the artifact; later runs replay it --
        and every report equals the live serial run bit for bit."""
        live = EvalContext(PROFILES["tiny"], cache_dir=tmp_path).run_attack(
            "markov:2", "bank-check"
        )
        banks = tmp_path / "banks"
        ctx = EvalContext(PROFILES["tiny"], cache_dir=tmp_path, bank_dir=banks)
        first = ctx.run_attack("markov:2", "bank-check")
        artifacts = sorted(banks.glob("*.bank"))
        assert len(artifacts) == 1, "first banked run must materialize the bank"
        second = ctx.run_attack("markov:2", "bank-check")
        assert sorted(banks.glob("*.bank")) == artifacts, "replay must not rebuild"
        assert first.as_dict() == live.as_dict()
        assert second.as_dict() == live.as_dict()

    def test_parallel_banked_replay_matches_serial_live(
        self, tmp_path, harness_test_set
    ):
        live = EvalContext(PROFILES["tiny"], cache_dir=tmp_path).run_attack(
            "markov:2", "bank-par"
        )
        ctx = EvalContext(
            PROFILES["tiny"],
            cache_dir=tmp_path,
            bank_dir=tmp_path / "banks",
            workers=2,
            schedule="elastic",
        )
        assert ctx.run_attack("markov:2", "bank-par").as_dict() == live.as_dict()

    def test_non_replayable_spec_falls_back_to_live(
        self, tmp_path, harness_test_set
    ):
        banks = tmp_path / "banks"
        ctx = EvalContext(PROFILES["tiny"], cache_dir=tmp_path, bank_dir=banks)
        report = ctx.run_attack("bankfeedback", "bank-fb")
        assert report.rows[-1].guesses == PROFILES["tiny"].budgets[-1]
        assert not list(banks.glob("*.bank")), "feedback strategies must not bank"

    def test_distinct_labels_get_distinct_banks(self, tmp_path, harness_test_set):
        """The rng label is part of the identity key: table2 and table3
        runs of the same spec sample different streams."""
        banks = tmp_path / "banks"
        ctx = EvalContext(PROFILES["tiny"], cache_dir=tmp_path, bank_dir=banks)
        ctx.run_attack("markov:2", "bank-a")
        ctx.run_attack("markov:2", "bank-b")
        assert len(list(banks.glob("*.bank"))) == 2

"""Builder layer: replayability gating, codec discipline, prefix stability."""

from __future__ import annotations

from typing import Iterator

import numpy as np
import pytest

from repro.bank import BankError, build_bank
from repro.strategies import build
from repro.strategies.base import GuessBatch, GuessingStrategy



class FiniteStrings(GuessingStrategy):
    """Replayable string-batch enumerator with a hard stream limit."""

    replayable = True

    def __init__(self, passwords) -> None:
        super().__init__(spec="finite")
        self.name = "finite"
        self.passwords = list(passwords)

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        """Yield the fixed password list in batches of three."""
        cursor = 0
        while cursor < len(self.passwords):
            count = min(self.context.next_count(3), len(self.passwords) - cursor)
            if count < 1:
                return
            yield GuessBatch(self.passwords[cursor : cursor + count])
            cursor += count


class TestGating:
    def test_refuses_non_replayable(self, tmp_path, bank_encoder, feedback_strategy):
        with pytest.raises(BankError, match="not deterministic-replayable"):
            build_bank(
                feedback_strategy, 100, tmp_path / "fb.bank", encoder=bank_encoder
            )

    def test_force_banks_the_feedback_free_stream(
        self, tmp_path, bank_encoder, feedback_strategy
    ):
        bank = build_bank(
            feedback_strategy,
            100,
            tmp_path / "fb.bank",
            encoder=bank_encoder,
            force=True,
        )
        assert bank.total == 100
        assert bank.codec.strings_from_keys(np.asarray(bank.keys[:1])) == ["fb0000000"]

    def test_string_batches_need_an_encoder(self, tmp_path):
        with pytest.raises(BankError, match="encoder"):
            build_bank(FiniteStrings(["aa", "bb"]), 2, tmp_path / "s.bank")

    def test_unrepresentable_guess_rejected(self, tmp_path, bank_encoder):
        too_long = "a" * (bank_encoder.max_length + 1)
        with pytest.raises(BankError, match="not representable"):
            build_bank(
                FiniteStrings(["ok1", too_long]),
                2,
                tmp_path / "bad.bank",
                encoder=bank_encoder,
            )

    def test_dry_stream_rejected(self, tmp_path, bank_encoder):
        with pytest.raises(BankError, match="ran dry"):
            build_bank(
                FiniteStrings(["aa", "bb", "cc"]),
                10,
                tmp_path / "dry.bank",
                encoder=bank_encoder,
            )


class TestStreamShape:
    def test_budget_truncation_and_segments(self, tmp_path, bank_encoder):
        bank = build_bank(
            FiniteStrings([f"pw{i}" for i in range(9)]),
            7,
            tmp_path / "t.bank",
            encoder=bank_encoder,
        )
        assert bank.total == 7
        ends = np.load(bank.path / "segments.npy")
        assert int(ends[-1]) == 7
        assert (np.diff(ends) > 0).all()

    def test_order_preserved(self, tmp_path, bank_encoder):
        words = ["delta", "alpha", "alpha", "echo"]
        bank = build_bank(
            FiniteStrings(words), 4, tmp_path / "o.bank", encoder=bank_encoder
        )
        assert bank.codec.strings_from_keys(np.asarray(bank.keys[:])) == words
        assert bank.unique == 3

    def test_smaller_budget_is_a_prefix(
        self, tmp_path, corpus, alphabet, bank_split, bank_encoder, markov_bank,
        bank_seed,
    ):
        """Banking fewer guesses from the same seed yields a stream prefix.

        This is what lets one large bank serve every smaller budget in a
        schedule: the live sampler's first ``b`` guesses do not depend on
        how many more it would have drawn.
        """
        train_half, _ = bank_split
        strategy = build("markov:3", corpus=train_half, alphabet=alphabet)
        small = build_bank(
            strategy, 400, tmp_path / "small.bank", seed=bank_seed, encoder=bank_encoder
        )
        assert np.array_equal(
            np.asarray(small.keys[:]), np.asarray(markov_bank.keys[:400])
        )

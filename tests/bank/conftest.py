"""Fixtures for the guess-bank suite: one banked Markov stream, shared.

The session-scoped artifact is built once from the root conftest's
synthetic corpus and compared against a live serial attack over the same
``(spec, seed, budgets)`` -- the pairing every determinism test leans on.
A throwaway ``bankfeedback`` family (registered here, like the fault
families in ``tests/runtime/conftest.py``) gives the suite a
non-replayable strategy that needs no model training.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
import pytest

from repro.bank import build_bank
from repro.data.dataset import PasswordDataset
from repro.data.encoding import PasswordEncoder
from repro.strategies import AttackEngine, build
from repro.strategies.base import GuessBatch, GuessingStrategy
from repro.strategies.registry import register

BANK_SEED = 11
BANK_BUDGETS = [200, 600, 1200]


class FeedbackStrategy(GuessingStrategy):
    """Infinite enumerator that *claims* to read feedback (replayable=False).

    The stream itself is deterministic -- what matters to the tests is the
    flag: ``build_bank`` must refuse it without ``force=True`` and the
    eval harness must fall back to live sampling.
    """

    def __init__(self, prefix: str = "fb") -> None:
        super().__init__(spec="bankfeedback")
        self.name = "bank-feedback"
        self.prefix = prefix
        self._n = 0

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        """Yield ``fb0000001, fb0000002, ...`` forever, 50 per batch."""
        while True:
            count = self.context.next_count(50)
            if count < 1:
                return
            start = self._n
            self._n += count
            yield GuessBatch(
                [f"{self.prefix}{start + i:07d}" for i in range(count)]
            )


@register("bankfeedback", "test-only: deterministic but flagged non-replayable")
def _build_feedback(spec, resources):
    return FeedbackStrategy()


@pytest.fixture
def feedback_strategy():
    """A fresh non-replayable strategy instance (class defined above)."""
    return FeedbackStrategy()


@pytest.fixture(scope="session")
def bank_seed():
    return BANK_SEED


@pytest.fixture(scope="session")
def bank_budgets():
    return list(BANK_BUDGETS)


@pytest.fixture(scope="session")
def bank_encoder(alphabet):
    return PasswordEncoder(alphabet)


@pytest.fixture(scope="session")
def bank_split(corpus, bank_encoder):
    """(train_half, test_set) -- the CLI attack's 50/50 split and cleaning."""
    split = len(corpus) // 2
    dataset = PasswordDataset(corpus[:split], corpus[split:], bank_encoder)
    return corpus[:split], dataset.test_set


@pytest.fixture(scope="session")
def markov_bank(tmp_path_factory, corpus, alphabet, bank_split, bank_encoder):
    """A markov:3 stream banked at ``BANK_BUDGETS[-1]`` guesses."""
    train_half, _ = bank_split
    strategy = build("markov:3", corpus=train_half, alphabet=alphabet)
    out = tmp_path_factory.mktemp("banks") / "markov3.bank"
    return build_bank(
        strategy, BANK_BUDGETS[-1], out, seed=BANK_SEED, encoder=bank_encoder
    )


@pytest.fixture(scope="session")
def live_report(corpus, alphabet, bank_split):
    """The serial live-sampled report the bank must reproduce bit for bit."""
    train_half, test_set = bank_split
    strategy = build("markov:3", corpus=train_half, alphabet=alphabet)
    engine = AttackEngine(test_set, BANK_BUDGETS)
    return engine.run(strategy, np.random.default_rng(BANK_SEED))

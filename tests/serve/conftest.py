"""Serving-tier fixtures: the session model saved as daemon artifacts."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def serve_artifacts(tmp_path_factory, trained_model, corpus):
    """(model checkpoint path, reference corpus path) on disk."""
    tmp = tmp_path_factory.mktemp("serve")
    model_path = tmp / "model.npz"
    trained_model.save(model_path)
    corpus_path = tmp / "reference.txt"
    corpus_path.write_text("\n".join(corpus[:500]) + "\n")
    return str(model_path), str(corpus_path)


@pytest.fixture(scope="session")
def strength_spec(serve_artifacts):
    model_path, corpus_path = serve_artifacts
    return f"strength?model={model_path}&corpus={corpus_path}&sample=500"

"""Wire-protocol robustness: strict parsing, one-line errors, no crashes.

The hypothesis suites assert the protocol's two safety properties:

* every well-formed request round-trips through ``parse_request`` with
  its fields intact, and
* *any* input line -- valid, malformed, adversarial -- produces either a
  validated :class:`Request` or a :class:`ProtocolError` whose message
  renders as a single-line error response; nothing else ever escapes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_PASSWORDS_PER_REQUEST,
    ProtocolError,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)

passwords_strategy = st.lists(
    st.text(min_size=1, max_size=12), min_size=1, max_size=8
)
ids_strategy = st.one_of(st.none(), st.integers(), st.text(max_size=20))


class TestRoundTrip:
    @given(
        op=st.sampled_from(["score", "band"]),
        passwords=passwords_strategy,
        request_id=ids_strategy,
        deadline=st.one_of(st.none(), st.floats(min_value=0, max_value=1e6)),
        single=st.booleans(),
    )
    @settings(max_examples=60)
    def test_scoring_requests_round_trip(
        self, op, passwords, request_id, deadline, single
    ):
        payload = {"op": op}
        if single:
            payload["password"] = passwords[0]
        else:
            payload["passwords"] = passwords
        if request_id is not None:
            payload["id"] = request_id
        if deadline is not None:
            payload["deadline_ms"] = deadline
        request = parse_request(json.dumps(payload))
        assert request.op == op
        assert request.single is single
        assert request.passwords == ([passwords[0]] if single else passwords)
        assert request.id == request_id
        assert request.deadline_ms == deadline

    @given(
        password=st.text(min_size=1, max_size=12),
        sample_size=st.integers(min_value=1, max_value=10**6),
        seed=st.one_of(st.none(), st.integers(min_value=-(2**31), max_value=2**31)),
    )
    @settings(max_examples=30)
    def test_guess_number_round_trips(self, password, sample_size, seed):
        payload = {"op": "guess_number", "password": password, "sample_size": sample_size}
        if seed is not None:
            payload["seed"] = seed
        request = parse_request(json.dumps(payload))
        assert request.sample_size == sample_size
        assert request.seed == seed

    @given(
        passwords=passwords_strategy,
        top=st.one_of(st.none(), st.integers(min_value=1, max_value=10**9)),
    )
    @settings(max_examples=30)
    def test_lookup_round_trips(self, passwords, top):
        payload = {"op": "lookup", "passwords": passwords}
        if top is not None:
            payload["top"] = top
        request = parse_request(json.dumps(payload))
        assert request.passwords == passwords
        assert request.top == top


class TestArbitraryInputNeverCrashes:
    @given(line=st.text(max_size=300))
    @settings(max_examples=150)
    def test_any_text_parses_or_raises_protocol_error_only(self, line):
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            rendered = encode_response(error_response(str(exc)))
            assert "\n" not in rendered  # one-line error contract
            assert json.loads(rendered)["ok"] is False
        else:
            assert request.op in protocol.OPS

    @given(payload=st.dictionaries(st.text(max_size=10), st.integers(), max_size=5))
    @settings(max_examples=80)
    def test_any_json_object_parses_or_raises_protocol_error_only(self, payload):
        try:
            parse_request(json.dumps(payload))
        except ProtocolError:
            pass


class TestStrictValidation:
    @pytest.mark.parametrize(
        "line, match",
        [
            ("", "empty request"),
            ("   ", "empty request"),
            ("{not json", "not valid JSON"),
            ("[1,2,3]", "JSON object"),
            ('"scalar"', "JSON object"),
            ('{"op": "transmogrify"}', "unknown op"),
            ('{"op": 7}', "unknown op"),
            ('{"password": "x"}', "unknown op"),
            ('{"op": "score"}', "exactly one of"),
            ('{"op": "score", "password": "a", "passwords": ["b"]}', "exactly one of"),
            ('{"op": "score", "passwords": []}', "must not be empty"),
            ('{"op": "score", "passwords": ["a", 3]}', "list of strings"),
            ('{"op": "score", "password": 42}', "must be a string"),
            ('{"op": "score", "password": "x", "id": [1]}', "'id' must be"),
            ('{"op": "score", "password": "x", "deadline_ms": "soon"}', "must be a number"),
            ('{"op": "score", "password": "x", "deadline_ms": -1}', "must be >="),
            ('{"op": "score", "password": "x", "model": 9}', "must be a string"),
            ('{"op": "score", "password": "x", "turbo": true}', "unknown field"),
            ('{"op": "ping", "password": "x"}', "unknown field"),
            ('{"op": "guess_number", "password": "x", "seed": "a"}', "'seed' must be"),
            ('{"op": "guess_number", "password": "x", "sample_size": 0}', "must be >="),
            ('{"op": "lookup", "password": "x", "top": 0}', "must be >="),
        ],
    )
    def test_misuse_is_one_actionable_line(self, line, match):
        with pytest.raises(ProtocolError, match=match):
            parse_request(line)

    def test_password_count_cap(self):
        line = json.dumps(
            {"op": "score", "passwords": ["x"] * (MAX_PASSWORDS_PER_REQUEST + 1)}
        )
        with pytest.raises(ProtocolError, match="at most"):
            parse_request(line)

    def test_line_length_cap(self):
        line = '{"op": "score", "password": "' + "a" * protocol.MAX_LINE_BYTES + '"}'
        with pytest.raises(ProtocolError, match="longer than"):
            parse_request(line)


class TestResponses:
    def test_ok_response_carries_payload_and_id(self):
        response = ok_response("score", "req-1", score=3, band="strong")
        assert response == {
            "ok": True, "op": "score", "id": "req-1", "score": 3, "band": "strong",
        }

    def test_error_response_flattens_newlines(self):
        response = error_response("boom\nwith\ttraceback\nlines", 7)
        assert response["error"] == "boom with traceback lines"
        assert response["id"] == 7
        assert "\n" not in encode_response(response)

    def test_encode_is_deterministic_single_line(self):
        a = encode_response(ok_response("stats", None, b=1, a=2))
        b = encode_response(ok_response("stats", None, a=2, b=1))
        assert a == b  # sorted keys: byte-stable responses
        assert "\n" not in a

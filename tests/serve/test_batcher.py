"""Micro-batcher scheduling semantics under virtual time (no real sleeps).

Every timing assertion here runs against :class:`FakeClock`: the test
advances virtual time and pumps the batcher, so flush-on-timeout and
deadline-expiry behavior is exact and immune to loaded-machine flake.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    BatcherClosed,
    DeadlineExceeded,
    FakeClock,
    MicroBatcher,
    QueueFull,
    ServeError,
)


class Harness:
    """A batcher over a recording flush function."""

    def __init__(self, **kwargs):
        self.clock = kwargs.pop("clock", FakeClock())
        self.flushes = []
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("max_wait_ms", 10.0)
        kwargs.setdefault("max_queue", 64)
        self.batcher = MicroBatcher(self._flush, clock=self.clock, **kwargs)

    def _flush(self, passwords):
        self.flushes.append(list(passwords))
        return [f"scored:{p}" for p in passwords]


class TestFlushOnSize:
    def test_reaching_max_batch_flushes_without_waiting(self):
        h = Harness(max_batch=4)
        tickets = [h.batcher.submit([f"p{i}"]) for i in range(4)]
        assert h.batcher.pump() == 4  # no time has passed: size trigger
        assert h.flushes == [["p0", "p1", "p2", "p3"]]
        assert [t.result(0) for t in tickets] == [
            [f"scored:p{i}"] for i in range(4)
        ]

    def test_below_size_and_age_does_not_flush(self):
        h = Harness(max_batch=4, max_wait_ms=10.0)
        ticket = h.batcher.submit(["p0"])
        h.clock.advance(0.005)  # half the wait budget
        assert h.batcher.pump() == 0
        assert not ticket.done()
        assert h.batcher.queue_depth == 1

    def test_requests_are_never_split_across_flushes(self):
        h = Harness(max_batch=4)
        big = h.batcher.submit(["a", "b", "c", "d", "e", "f"])  # > max_batch
        small = h.batcher.submit(["g"])
        h.batcher.pump()
        h.clock.advance(0.010)  # the small leftover flushes on its timer
        h.batcher.pump()
        # the oversized request forms its own batch; the small one follows
        assert h.flushes == [["a", "b", "c", "d", "e", "f"], ["g"]]
        assert big.result(0) == [f"scored:{p}" for p in "abcdef"]
        assert small.result(0) == ["scored:g"]


class TestFlushOnTimeout:
    def test_oldest_request_age_triggers_flush(self):
        h = Harness(max_batch=64, max_wait_ms=10.0)
        ticket = h.batcher.submit(["p0"])
        h.clock.advance(0.010)  # exactly max_wait
        assert h.batcher.pump() == 1
        assert ticket.result(0) == ["scored:p0"]

    def test_later_requests_ride_the_oldest_timer(self):
        h = Harness(max_batch=64, max_wait_ms=10.0)
        h.batcher.submit(["old"])
        h.clock.advance(0.006)
        h.batcher.submit(["young"])
        h.clock.advance(0.005)  # old passes 10ms; young is 5ms old
        assert h.batcher.pump() == 2
        assert h.flushes == [["old", "young"]]

    def test_next_wakeup_tracks_oldest_flush_point(self):
        h = Harness(max_batch=64, max_wait_ms=10.0)
        assert h.batcher._next_wakeup_locked(h.clock.monotonic()) is None
        h.batcher.submit(["p0"])
        assert h.batcher._next_wakeup_locked(h.clock.monotonic()) == pytest.approx(0.010)
        h.clock.advance(0.004)
        assert h.batcher._next_wakeup_locked(h.clock.monotonic()) == pytest.approx(0.006)


class TestDeadlines:
    def test_expired_request_is_rejected_not_scored(self):
        h = Harness(max_batch=64, max_wait_ms=50.0)
        doomed = h.batcher.submit(["late"], deadline_ms=5.0)
        h.clock.advance(0.005)
        assert h.batcher.pump() == 1
        with pytest.raises(DeadlineExceeded):
            doomed.result(0)
        assert h.flushes == []  # never reached the model
        assert h.batcher.stats.snapshot()["rejected"] == {"deadline": 1}

    def test_deadline_wakes_before_flush_timer(self):
        h = Harness(max_batch=64, max_wait_ms=50.0)
        h.batcher.submit(["late"], deadline_ms=5.0)
        assert h.batcher._next_wakeup_locked(h.clock.monotonic()) == pytest.approx(0.005)

    def test_live_requests_survive_a_neighbors_expiry(self):
        h = Harness(max_batch=64, max_wait_ms=10.0)
        doomed = h.batcher.submit(["late"], deadline_ms=5.0)
        alive = h.batcher.submit(["fine"])
        h.clock.advance(0.005)
        h.batcher.pump()  # expiry only; flush timer not yet due
        h.clock.advance(0.005)
        h.batcher.pump()
        with pytest.raises(DeadlineExceeded):
            doomed.result(0)
        assert alive.result(0) == ["scored:fine"]
        assert h.flushes == [["fine"]]


class TestBackpressure:
    def test_full_queue_rejects_immediately(self):
        h = Harness(max_batch=2, max_queue=3)
        h.batcher.submit(["a", "b", "c"])
        with pytest.raises(QueueFull):
            h.batcher.submit(["d"])
        assert h.batcher.stats.snapshot()["rejected"] == {"overload": 1}

    def test_empty_submit_is_a_caller_error(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.batcher.submit([])


class TestShutdown:
    def test_drain_flushes_everything_queued(self):
        h = Harness(max_batch=64, max_wait_ms=1000.0)
        tickets = [h.batcher.submit([f"p{i}"]) for i in range(3)]
        h.batcher.close(drain=True)
        assert [t.result(0) for t in tickets] == [[f"scored:p{i}"] for i in range(3)]

    def test_drain_false_fails_pending_tickets(self):
        h = Harness(max_batch=64, max_wait_ms=1000.0)
        ticket = h.batcher.submit(["p0"])
        h.batcher.close(drain=False)
        with pytest.raises(BatcherClosed):
            ticket.result(0)
        assert h.flushes == []

    def test_submit_after_close_is_rejected(self):
        h = Harness()
        h.batcher.close()
        with pytest.raises(BatcherClosed):
            h.batcher.submit(["p0"])


class TestFailureIsolation:
    def test_poisoned_flush_fails_its_members_not_the_batcher(self):
        clock = FakeClock()

        def explode(passwords):
            raise RuntimeError("model on fire")

        batcher = MicroBatcher(explode, max_batch=2, clock=clock)
        tickets = [batcher.submit(["a"]), batcher.submit(["b"])]
        batcher.pump()
        for ticket in tickets:
            with pytest.raises(ServeError, match="scoring failed"):
                ticket.result(0)
        # the batcher itself is still usable
        assert batcher.submit(["c"]) is not None


class TestThreadedLoop:
    """The real worker loop, still under virtual time (FakeClock.wait jumps)."""

    def test_threaded_flush_and_drain(self):
        h = Harness(max_batch=64, max_wait_ms=5.0)
        h.batcher.start()
        tickets = [h.batcher.submit([f"p{i}"]) for i in range(3)]
        results = [t.result(timeout=10.0) for t in tickets]
        assert results == [[f"scored:p{i}"] for i in range(3)]
        h.batcher.close(drain=True)
        assert all(p in sum(h.flushes, []) for p in ("p0", "p1", "p2"))

"""End-to-end daemon tests: sockets, concurrency, and the determinism contract.

The soak test is the PR's acceptance criterion: many concurrent clients
hammering the daemon must each read back *bitwise* the answers serial
:meth:`StrengthEstimator.score` / ``log_prob`` calls produce -- whatever
micro-batch interleaving their requests happened to land in.
"""

from __future__ import annotations

import io
import json
import threading

import numpy as np
import pytest

from repro.core.strength import StrengthEstimator
from repro.serve import (
    ScoringServer,
    ServeApp,
    ServeClient,
    ServeConfigError,
    run_once,
)


@pytest.fixture(scope="module")
def serial_estimator(trained_model, corpus):
    """The reference scorer: same model and calibration as the daemon spec."""
    estimator = StrengthEstimator(trained_model)
    estimator.calibrate(corpus[:500])
    return estimator


@pytest.fixture()
def server(strength_spec, tmp_path):
    app = ServeApp([strength_spec], max_batch=16, max_wait_ms=2.0)
    srv = ScoringServer(app, socket_path=str(tmp_path / "serve.sock")).start()
    yield srv
    srv.stop()


class TestOnceMode:
    """``serve --once``: the socket-free line loop."""

    def run(self, spec, lines):
        app = ServeApp([spec], threaded=False)
        out = io.StringIO()
        assert run_once(app, io.StringIO("\n".join(lines) + "\n"), out) == 0
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_smoke(self, strength_spec):
        responses = self.run(
            strength_spec,
            [
                json.dumps({"op": "ping"}),
                json.dumps({"op": "score", "password": "love12", "id": 1}),
                "",  # blank lines are skipped, not answered
                json.dumps({"op": "band", "passwords": ["love12", "zq8kfp"]}),
                json.dumps({"op": "stats"}),
            ],
        )
        assert len(responses) == 4
        ping, score, band, stats = responses
        assert ping == {"ok": True, "op": "ping"}
        assert score["ok"] and score["id"] == 1 and 0 <= score["score"] <= 4
        assert band["ok"] and len(band["bands"]) == 2 and band["count"] == 2
        assert stats["ok"] and stats["requests"] >= 3

    def test_malformed_lines_get_errors_and_never_crash(self, strength_spec):
        responses = self.run(
            strength_spec,
            [
                "garbage {{{",
                json.dumps({"op": "nope"}),
                json.dumps({"op": "score"}),
                json.dumps({"op": "score", "password": "love12"}),
            ],
        )
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert all("error" in r for r in responses[:3])

    def test_shutdown_request_ends_the_loop(self, strength_spec):
        responses = self.run(
            strength_spec,
            [
                json.dumps({"op": "shutdown"}),
                json.dumps({"op": "ping"}),  # after shutdown: never served
            ],
        )
        assert len(responses) == 1
        assert responses[0] == {"ok": True, "op": "shutdown"}

    def test_unscorable_password_is_a_sentinel_not_an_error(self, strength_spec):
        [response] = self.run(
            strength_spec,
            [json.dumps({"op": "score", "password": "é" * 40})],
        )
        assert response["ok"]
        assert response["score"] == -1
        assert response["band"] == "unscorable"
        assert response["log_prob"] is None


class TestConfig:
    def test_no_specs_is_a_config_error(self):
        with pytest.raises(ServeConfigError, match="at least one"):
            ServeApp([])

    def test_unknown_family_is_a_config_error(self):
        with pytest.raises(ServeConfigError, match="strength or bank"):
            ServeApp(["markov:3"])

    def test_strength_without_model_is_a_config_error(self):
        with pytest.raises(ServeConfigError, match="model="):
            ServeApp(["strength?corpus=x.txt"])

    def test_missing_checkpoint_is_one_line(self, tmp_path):
        with pytest.raises(ServeConfigError, match="cannot load model"):
            ServeApp([f"strength?model={tmp_path}/no.npz&corpus={tmp_path}/no.txt"])


class TestSocketServer:
    def test_request_response_over_unix_socket(self, server):
        with ServeClient(socket_path=server.address) as client:
            assert client.request(op="ping") == {"ok": True, "op": "ping"}
            response = client.request(op="score", password="love12", id="a")
            assert response["ok"] and response["id"] == "a"

    def test_pipelined_requests_come_back_in_order(self, server):
        with ServeClient(socket_path=server.address) as client:
            for i in range(20):
                client.send({"op": "score", "password": f"pw{i}", "id": i})
            responses = [client.recv() for _ in range(20)]
        assert [r["id"] for r in responses] == list(range(20))
        assert all(r["ok"] for r in responses)

    def test_malformed_socket_traffic_never_kills_the_daemon(self, server):
        with ServeClient(socket_path=server.address) as client:
            client._sock.sendall(b"}{ not json\n")
            assert client.recv()["ok"] is False
            # the connection and the daemon both survive
            assert client.request(op="ping")["ok"]
        with ServeClient(socket_path=server.address) as fresh:
            assert fresh.request(op="ping")["ok"]

    def test_stats_reflect_served_requests(self, server):
        with ServeClient(socket_path=server.address) as client:
            for i in range(8):
                client.send({"op": "score", "password": f"pw{i}", "id": i})
            for _ in range(8):
                client.recv()
            stats = client.request(op="stats")
        assert stats["ok"]
        assert stats["passwords"] >= 8
        assert stats["batches"] >= 1
        assert sum(stats["batch_size_histogram"].values()) == stats["batches"]
        assert stats["queue_depth"] == 0  # everything drained
        latency = stats["latency"]
        assert 0 <= latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]

    def test_shutdown_request_stops_the_server(self, server):
        with ServeClient(socket_path=server.address) as client:
            assert client.request(op="shutdown")["ok"]
        assert server.wait(timeout=10.0)


class TestDeterminismSoak:
    """Concurrent batched scoring == serial scoring, bitwise."""

    CLIENTS = 6
    REQUESTS_PER_CLIENT = 25

    def test_batched_answers_are_bitwise_serial(
        self, server, serial_estimator, corpus
    ):
        # distinct password mix per client, drawn from the calibrated corpus
        pools = [
            corpus[i :: self.CLIENTS][: self.REQUESTS_PER_CLIENT]
            for i in range(self.CLIENTS)
        ]
        results: dict = {}
        errors: list = []

        def client_worker(idx: int) -> None:
            try:
                with ServeClient(socket_path=server.address) as client:
                    # pipeline everything: maximizes cross-client batching
                    for j, password in enumerate(pools[idx]):
                        client.send({"op": "score", "password": password, "id": j})
                    results[idx] = [client.recv() for _ in pools[idx]]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((idx, exc))

        threads = [
            threading.Thread(target=client_worker, args=(i,))
            for i in range(self.CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        assert sorted(results) == list(range(self.CLIENTS))

        for idx, pool in enumerate(pools):
            for j, password in enumerate(pool):
                response = results[idx][j]
                assert response["ok"], response
                assert response["id"] == j
                # bitwise: JSON round-trips Python floats exactly
                assert response["score"] == serial_estimator.score(password)
                assert response["log_prob"] == serial_estimator.log_prob(password)
                assert response["percentile"] == serial_estimator.percentile(password)

        # micro-batching actually happened: with 6 pipelining clients the
        # histogram cannot be all singleton batches
        with ServeClient(socket_path=server.address) as client:
            stats = client.request(op="stats")
        assert stats["requests"] >= self.CLIENTS * self.REQUESTS_PER_CLIENT
        assert stats["batches"] < self.CLIENTS * self.REQUESTS_PER_CLIENT

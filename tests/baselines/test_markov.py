"""Markov n-gram baseline."""

import numpy as np
import pytest

from repro.baselines.markov import MarkovModel


@pytest.fixture
def fitted(corpus):
    return MarkovModel(order=2).fit(corpus)


class TestFit:
    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            MarkovModel().fit([])

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            MarkovModel(order=0)

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MarkovModel().sample_passwords(1, np.random.default_rng(0))


class TestSampling:
    def test_count_and_length(self, fitted):
        samples = fitted.sample_passwords(50, np.random.default_rng(0))
        assert len(samples) == 50
        assert all(len(s) <= 10 for s in samples)

    def test_samples_use_corpus_alphabet(self, fitted, corpus):
        corpus_chars = set("".join(corpus))
        sample_chars = set("".join(fitted.sample_passwords(100, np.random.default_rng(1))))
        assert sample_chars <= corpus_chars

    def test_deterministic_given_rng(self, fitted):
        a = fitted.sample_passwords(20, np.random.default_rng(3))
        b = fitted.sample_passwords(20, np.random.default_rng(3))
        assert a == b


class TestLogProb:
    def test_train_password_likelier_than_noise(self, fitted, corpus):
        real = corpus[0]
        assert fitted.log_prob(real) > fitted.log_prob("zqxjwvkpfy"[: len(real)])

    def test_out_of_alphabet_char(self, fitted):
        assert fitted.log_prob("love☃") == float("-inf")

    def test_log_prob_is_negative(self, fitted):
        assert fitted.log_prob("love12") < 0

    def test_memorizes_single_password_corpus(self):
        model = MarkovModel(order=1, smoothing=1e-6).fit(["ababab"] * 10)
        samples = model.sample_passwords(20, np.random.default_rng(0))
        # order-1 chain on pure "ab" alternation stays in {a, b}
        assert all(set(s) <= {"a", "b"} for s in samples if s)

"""PassGAN baseline: components and training loop."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines.gan import Critic, Generator, PassGAN, PassGANConfig, WGANTrainingConfig
from repro.data.alphabet import compact_alphabet


@pytest.fixture
def small_config(alphabet):
    return PassGANConfig(
        alphabet_chars=alphabet.chars,
        noise_dim=8,
        hidden=16,
        iterations=5,
        batch_size=32,
        seed=0,
    )


class TestGenerator:
    def test_output_in_unit_cube(self):
        gen = Generator(8, 10, hidden=16, rng=np.random.default_rng(0))
        out = gen(Tensor(np.random.randn(4, 8)))
        assert out.shape == (4, 10)
        assert np.all((out.data > 0) & (out.data < 1))

    def test_noise_shape(self):
        gen = Generator(8, 10, hidden=16, rng=np.random.default_rng(0))
        assert gen.sample_noise(5, np.random.default_rng(1)).shape == (5, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            Generator(0, 10)


class TestCritic:
    def test_scalar_output(self):
        critic = Critic(10, hidden=16, rng=np.random.default_rng(0))
        assert critic(Tensor(np.random.randn(6, 10))).shape == (6, 1)

    def test_weight_clipping(self):
        critic = Critic(10, hidden=16, rng=np.random.default_rng(0))
        for p in critic.parameters():
            p.data += 1.0
        critic.clip_weights(0.05)
        assert all(np.max(np.abs(p.data)) <= 0.05 for p in critic.parameters())

    def test_clip_validation(self):
        with pytest.raises(ValueError):
            Critic(4).clip_weights(0.0)


class TestWGANConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WGANTrainingConfig(critic_steps=0)
        with pytest.raises(ValueError):
            WGANTrainingConfig(batch_size=0)


class TestPassGAN:
    def test_fit_records_history(self, small_config, corpus):
        gan = PassGAN(small_config)
        history = gan.fit(corpus[:200])
        assert len(history.generator_loss) == 5
        assert len(history.critic_loss) == 5

    def test_fit_requires_enough_data(self, small_config):
        gan = PassGAN(small_config)
        with pytest.raises(ValueError):
            gan.fit(["a"] * 3)

    def test_sample_passwords(self, small_config, corpus):
        gan = PassGAN(small_config)
        gan.fit(corpus[:200])
        samples = gan.sample_passwords(30, np.random.default_rng(0))
        assert len(samples) == 30
        assert all(len(s) <= 10 for s in samples)

    def test_critic_weights_stay_clipped_after_training(self, small_config, corpus):
        gan = PassGAN(small_config)
        gan.fit(corpus[:200])
        clip = gan.trainer.config.clip
        assert all(np.max(np.abs(p.data)) <= clip + 1e-12 for p in gan.critic.parameters())

    def test_save_load_roundtrip(self, small_config, corpus, tmp_path):
        gan = PassGAN(small_config)
        gan.fit(corpus[:200])
        path = tmp_path / "gan.npz"
        gan.save(path)
        restored = PassGAN.load(path)
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        assert np.allclose(
            gan.sample_features(8, rng_a), restored.sample_features(8, rng_b)
        )

"""Weir-style PCFG baseline."""

import numpy as np
import pytest

from repro.baselines.pcfg import PCFGModel, segment, structure_of


class TestSegmentation:
    def test_word_digits(self):
        assert segment("love12") == [("L", "love"), ("D", "12")]

    def test_symbols(self):
        assert segment("ab!cd") == [("L", "ab"), ("S", "!"), ("L", "cd")]

    def test_structure_string(self):
        assert structure_of("love12!") == "L4 D2 S1"

    def test_empty(self):
        assert segment("") == []


class TestModel:
    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            PCFGModel().fit([])

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCFGModel().sample_passwords(1, np.random.default_rng(0))

    def test_samples_follow_learned_structures(self, corpus):
        model = PCFGModel().fit(corpus)
        learned = set(model._structures)
        for password in model.sample_passwords(100, np.random.default_rng(0)):
            assert structure_of(password) in learned

    def test_recombination_generates_novel_passwords(self):
        # the whole point of PCFG: novel terminal combinations
        model = PCFGModel().fit(["love12", "star99", "moon12"])
        samples = set(model.sample_passwords(300, np.random.default_rng(1)))
        novel = samples - {"love12", "star99", "moon12"}
        assert "love99" in samples or "star12" in samples or novel

    def test_log_prob_of_training_password(self, corpus):
        model = PCFGModel().fit(corpus)
        assert np.isfinite(model.log_prob(corpus[0]))

    def test_log_prob_unknown_structure(self, corpus):
        model = PCFGModel().fit(["love12"])
        assert model.log_prob("!!!!!!!!") == float("-inf")

    def test_log_prob_unknown_terminal(self):
        model = PCFGModel().fit(["love12"])
        assert model.log_prob("hate34") == float("-inf")

    def test_deterministic_sampling(self, corpus):
        model = PCFGModel().fit(corpus)
        a = model.sample_passwords(30, np.random.default_rng(5))
        b = model.sample_passwords(30, np.random.default_rng(5))
        assert a == b

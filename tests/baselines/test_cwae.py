"""CWAE baseline: MMD penalty, context noising, training."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines.cwae import CWAE, CWAEConfig, mmd_penalty
from repro.autograd.grad_check import check_gradients


@pytest.fixture
def small_config(alphabet):
    return CWAEConfig(
        alphabet_chars=alphabet.chars,
        latent_dim=8,
        hidden=16,
        epochs=2,
        batch_size=32,
        seed=0,
    )


class TestMMD:
    def test_near_zero_for_identical_sets(self):
        # the estimator excludes diagonals within-set but not across, so
        # identical sets give a small negative bias rather than exactly 0
        z = np.random.randn(64, 4)
        identical = mmd_penalty(Tensor(z), Tensor(z.copy()), scale=1.0).item()
        shifted = mmd_penalty(Tensor(z), Tensor(z + 3.0), scale=1.0).item()
        assert abs(identical) < 0.05
        assert identical < shifted

    def test_positive_for_shifted_sets(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(32, 4))
        b = rng.normal(size=(32, 4)) + 5.0
        assert mmd_penalty(Tensor(a), Tensor(b), scale=1.0).item() > 0.1

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            mmd_penalty(Tensor(np.zeros((1, 4))), Tensor(np.zeros((1, 4))), scale=1.0)

    def test_gradients_flow(self):
        b = np.random.randn(8, 3)
        check_gradients(
            lambda a: mmd_penalty(a, Tensor(b), scale=1.0),
            [np.random.randn(8, 3)],
            atol=1e-4,
        )


class TestContextNoise:
    def test_drops_some_characters(self, small_config):
        cwae = CWAE(small_config)
        feats = cwae.encoder_codec.encode_batch(["abcdefghij"] * 64)
        noisy = cwae._context_noise(feats, np.random.default_rng(0))
        assert not np.allclose(noisy, feats)
        # dropped cells land on the PAD bin center
        pad_center = 0.5 * cwae.encoder_codec.bin_width
        changed = noisy != feats
        assert np.allclose(noisy[changed], pad_center)

    def test_noise_rate_scales_with_epsilon(self, small_config):
        cwae = CWAE(small_config)
        feats = cwae.encoder_codec.encode_batch(["abcdefghij"] * 200)
        low = cwae._context_noise(feats, np.random.default_rng(1))
        cwae.config.epsilon = 8.0
        high = cwae._context_noise(feats, np.random.default_rng(1))
        assert (high != feats).sum() > (low != feats).sum()


class TestTraining:
    def test_fit_records_history(self, small_config, corpus):
        cwae = CWAE(small_config)
        history = cwae.fit(corpus[:300])
        assert len(history.reconstruction) == 2
        assert all(np.isfinite(v) for v in history.reconstruction)

    def test_reconstruction_improves(self, small_config, corpus):
        cwae = CWAE(small_config)
        history = cwae.fit(corpus[:500], epochs=8)
        assert history.reconstruction[-1] < history.reconstruction[0]

    def test_needs_two_passwords(self, small_config):
        with pytest.raises(ValueError):
            CWAE(small_config).fit(["a"])

    def test_sample_passwords(self, small_config, corpus):
        cwae = CWAE(small_config)
        cwae.fit(corpus[:300])
        samples = cwae.sample_passwords(20, np.random.default_rng(0))
        assert len(samples) == 20
        assert all(len(s) <= 10 for s in samples)

    def test_reconstruct_api(self, small_config, corpus):
        cwae = CWAE(small_config)
        cwae.fit(corpus[:300])
        out = cwae.reconstruct(["love12"])
        assert len(out) == 1 and isinstance(out[0], str)

    def test_save_load_roundtrip(self, small_config, corpus, tmp_path):
        cwae = CWAE(small_config)
        cwae.fit(corpus[:300])
        path = tmp_path / "cwae.npz"
        cwae.save(path)
        restored = CWAE.load(path)
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        assert np.allclose(
            cwae.sample_features(8, rng_a), restored.sample_features(8, rng_b)
        )

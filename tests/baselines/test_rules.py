"""Rule-based (HashCat-style) baseline."""

import numpy as np
import pytest

from repro.baselines.rules import RuleBasedGuesser, letter_stem


class TestLetterStem:
    def test_extracts_leading_letters(self):
        assert letter_stem("love123") == "love"

    def test_lowercases(self):
        assert letter_stem("Love123") == "love"

    def test_stops_at_digit(self):
        assert letter_stem("ab1cd") == "ab"

    def test_empty_for_digit_start(self):
        assert letter_stem("123abc") == ""


class TestGuesser:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuleBasedGuesser(wordlist_size=0)

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RuleBasedGuesser().sample_passwords(1, np.random.default_rng(0))

    def test_wordlist_from_common_stems(self, corpus):
        guesser = RuleBasedGuesser(wordlist_size=50).fit(corpus)
        assert len(guesser.wordlist) <= 50
        assert any(w.isalpha() for w in guesser.wordlist)

    def test_sample_count_and_lengths(self, corpus):
        guesser = RuleBasedGuesser().fit(corpus)
        samples = guesser.sample_passwords(40, np.random.default_rng(0))
        assert len(samples) == 40
        assert all(0 < len(s) <= 10 for s in samples)

    def test_guesses_derive_from_wordlist(self, corpus):
        guesser = RuleBasedGuesser(wordlist_size=10).fit(corpus)
        stems = {w[:3].lower() for w in guesser.wordlist}
        samples = guesser.sample_passwords(50, np.random.default_rng(1))
        hits = sum(1 for s in samples if s[:3].lower() in stems)
        assert hits > 25  # most guesses keep their stem prefix

"""One-hot PassGAN variant (the faithful Sec. VI-A/B representation)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines.gan import Generator, PassGAN, PassGANConfig
from repro.data.onehot import OneHotEncoder


@pytest.fixture
def onehot_config(alphabet):
    return PassGANConfig(
        alphabet_chars=alphabet.chars,
        noise_dim=8,
        hidden=16,
        iterations=5,
        batch_size=32,
        encoding="onehot",
        seed=0,
    )


class TestSoftmaxGenerator:
    def test_rows_normalized_per_position(self):
        gen = Generator(
            8, 5 * 4, hidden=16, rng=np.random.default_rng(0),
            softmax_positions=5, softmax_vocab=4,
        )
        out = gen(Tensor(np.random.randn(6, 8)))
        shaped = out.data.reshape(6, 5, 4)
        assert np.allclose(shaped.sum(axis=2), 1.0)
        assert np.all(shaped >= 0)

    def test_softmax_args_validated(self):
        with pytest.raises(ValueError):
            Generator(8, 20, softmax_positions=5)  # missing vocab
        with pytest.raises(ValueError):
            Generator(8, 21, softmax_positions=5, softmax_vocab=4)  # 5*4 != 21

    def test_gradients_flow_through_softmax(self):
        gen = Generator(
            4, 3 * 4, hidden=8, rng=np.random.default_rng(1),
            softmax_positions=3, softmax_vocab=4,
        )
        out = gen(Tensor(np.random.randn(5, 4)))
        out.sum().backward()
        grads = [p.grad for p in gen.parameters() if p.grad is not None]
        assert grads  # at least some parameters received gradients


class TestOneHotPassGAN:
    def test_encoding_validated(self):
        with pytest.raises(ValueError):
            PassGANConfig(encoding="base64")

    def test_uses_onehot_codec(self, onehot_config):
        gan = PassGAN(onehot_config)
        assert isinstance(gan.encoder, OneHotEncoder)
        assert gan.generator.data_dim == gan.encoder.flat_dim

    def test_fit_and_sample(self, onehot_config, corpus):
        gan = PassGAN(onehot_config)
        history = gan.fit(corpus[:200])
        assert len(history.generator_loss) == 5
        samples = gan.sample_passwords(20, np.random.default_rng(0))
        assert len(samples) == 20
        assert all(len(s) <= 10 for s in samples)

    def test_generated_features_are_distributions(self, onehot_config, corpus):
        gan = PassGAN(onehot_config)
        gan.fit(corpus[:200])
        features = gan.sample_features(4, np.random.default_rng(1))
        shaped = features.reshape(4, 10, gan.encoder.vocab_size)
        assert np.allclose(shaped.sum(axis=2), 1.0, atol=1e-9)

    def test_save_load_roundtrip(self, onehot_config, corpus, tmp_path):
        gan = PassGAN(onehot_config)
        gan.fit(corpus[:200])
        gan.save(tmp_path / "gan.npz")
        restored = PassGAN.load(tmp_path / "gan.npz")
        assert restored.config.encoding == "onehot"
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        assert np.allclose(
            gan.sample_features(4, rng_a), restored.sample_features(4, rng_b)
        )

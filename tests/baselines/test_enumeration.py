"""Deterministic highest-probability enumeration for the count baselines.

Weir's PCFG paper contributes a priority-queue "next" function emitting
guesses in decreasing probability; the Markov equivalent is beam search.
These complement the sampling interface and are the modes a real cracking
session uses.
"""

import numpy as np
import pytest

from repro.baselines.markov import MarkovModel
from repro.baselines.pcfg import PCFGModel

TRAIN = ["love12"] * 10 + ["love99"] * 5 + ["star12"] * 4 + ["star1"] * 3 + ["hello"] * 2


class TestPCFGEnumeration:
    @pytest.fixture
    def model(self):
        return PCFGModel().fit(TRAIN)

    def test_monotone_decreasing_probability(self, model):
        guesses = model.top_guesses(10)
        scores = [model.log_prob(g) for g in guesses]
        assert scores == sorted(scores, reverse=True)

    def test_most_common_first(self, model):
        assert next(model.enumerate_guesses(1)) == "love12"

    def test_no_duplicates(self, model):
        guesses = model.top_guesses(20)
        assert len(guesses) == len(set(guesses))

    def test_recombination_included(self, model):
        # 'love1' and 'star99' never occur in training but their pieces do
        guesses = set(model.top_guesses(20))
        assert "love1" in guesses and "star99" in guesses

    def test_exhausts_support_gracefully(self, model):
        # support is finite: asking for more just stops
        guesses = model.top_guesses(10**6)
        assert len(guesses) < 10**6
        assert len(guesses) == len(set(guesses))

    def test_validation(self, model):
        with pytest.raises(ValueError):
            list(model.enumerate_guesses(-1))
        with pytest.raises(RuntimeError):
            PCFGModel().top_guesses(1)

    def test_enumeration_beats_sampling_on_coverage(self, corpus):
        # at equal guess counts, deterministic enumeration matches at least
        # as many corpus passwords as random sampling (no wasted duplicates)
        model = PCFGModel().fit(corpus[:1500])
        targets = set(corpus[1500:3000])
        enumerated = set(model.top_guesses(2000))
        sampled = set(model.sample_passwords(2000, np.random.default_rng(0)))
        assert len(enumerated & targets) >= len(sampled & targets)


class TestMarkovBeam:
    @pytest.fixture
    def model(self):
        return MarkovModel(order=2, smoothing=1e-4).fit(TRAIN)

    def test_monotone_decreasing_probability(self, model):
        guesses = model.top_guesses(6)
        scores = [model.log_prob(g) for g in guesses]
        assert scores == sorted(scores, reverse=True)

    def test_most_common_first(self, model):
        assert model.top_guesses(1) == ["love12"]

    def test_training_head_recovered(self, model):
        assert {"love12", "love99"} <= set(model.top_guesses(8))

    def test_no_duplicates_or_empties(self, model):
        guesses = model.top_guesses(30)
        assert len(guesses) == len(set(guesses))
        assert all(guesses)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.top_guesses(-1)
        with pytest.raises(ValueError):
            model.top_guesses(5, beam_width=0)
        with pytest.raises(RuntimeError):
            MarkovModel().top_guesses(1)

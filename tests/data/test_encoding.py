"""Password <-> feature-vector codec, including dequantization invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.alphabet import compact_alphabet, default_alphabet
from repro.data.encoding import PasswordEncoder


@pytest.fixture
def encoder():
    return PasswordEncoder(default_alphabet(), max_length=10)


class TestIndices:
    def test_pads_to_length(self, encoder):
        idx = encoder.to_indices("abc")
        assert idx.shape == (10,)
        assert np.all(idx[3:] == 0)

    def test_too_long_raises(self, encoder):
        with pytest.raises(ValueError):
            encoder.to_indices("x" * 11)

    def test_from_indices_stops_at_pad(self, encoder):
        idx = encoder.to_indices("hi")
        idx[5] = encoder.alphabet.index_of("z")  # junk after PAD is ignored
        assert encoder.from_indices(idx) == "hi"

    def test_empty_password(self, encoder):
        assert encoder.from_indices(encoder.to_indices("")) == ""


class TestFloatCodec:
    def test_roundtrip(self, encoder):
        for password in ("love123", "", "a", "QWERTY!#", "0123456789"):
            assert encoder.decode(encoder.encode(password)) == password

    def test_bin_centers_in_unit_interval(self, encoder):
        feats = encoder.encode("zz99")
        assert np.all((feats > 0) & (feats < 1))

    def test_decode_clips_out_of_range(self, encoder):
        values = np.array([-0.5] * 5 + [1.5] * 5)
        decoded = encoder.decode(values)  # must not raise
        assert isinstance(decoded, str)

    def test_batch_roundtrip(self, encoder):
        passwords = ["abc", "love99", ""]
        feats = encoder.encode_batch(passwords)
        assert feats.shape == (3, 10)
        assert encoder.decode_batch(feats) == passwords

    def test_empty_batch(self, encoder):
        assert encoder.encode_batch([]).shape == (0, 10)

    def test_invalid_max_length(self):
        with pytest.raises(ValueError):
            PasswordEncoder(default_alphabet(), max_length=0)


class TestVectorizedCodec:
    """The batch paths must be index-for-index the scalar loops."""

    def test_strings_from_indices_matches_scalar(self, encoder):
        rng = np.random.default_rng(0)
        index_matrix = rng.integers(0, encoder.vocab_size, size=(500, 10))
        expected = [encoder.from_indices(row) for row in index_matrix]
        assert encoder.strings_from_indices(index_matrix) == expected

    def test_indices_from_strings_matches_scalar(self, encoder):
        rng = np.random.default_rng(1)
        index_matrix = rng.integers(0, encoder.vocab_size, size=(200, 10))
        passwords = [encoder.from_indices(row) for row in index_matrix]
        expected = np.stack([encoder.to_indices(p) for p in passwords])
        assert (encoder.indices_from_strings(passwords) == expected).all()

    def test_indices_from_strings_validation(self, encoder):
        with pytest.raises(ValueError):
            encoder.indices_from_strings(["x" * 11])
        with pytest.raises(KeyError):
            encoder.indices_from_strings(["abc\tdef"])
        with pytest.raises(KeyError):
            encoder.indices_from_strings(["ab\x00c"])  # embedded NUL
        with pytest.raises(KeyError):
            # trailing NUL must not alias the NUL-free password
            encoder.indices_from_strings(["abc\x00"])
        assert encoder.indices_from_strings([]).shape == (0, 10)

    def test_empty_decode_batch(self, encoder):
        assert encoder.strings_from_indices(np.empty((0, 10), dtype=np.int64)) == []


class TestInternedIds:
    @pytest.fixture
    def packer(self):
        return PasswordEncoder(compact_alphabet(), max_length=10)

    def test_keys_biject_with_decoded_strings(self, packer):
        rng = np.random.default_rng(2)
        index_matrix = rng.integers(0, packer.vocab_size, size=(2000, 10))
        keys = packer.pack_indices(index_matrix).tolist()
        strings = packer.strings_from_indices(index_matrix)
        key_to_string, string_to_key = {}, {}
        for key, string in zip(keys, strings):
            assert key_to_string.setdefault(key, string) == string
            assert string_to_key.setdefault(string, key) == key

    def test_pack_passwords_agrees_with_pack_indices(self, packer):
        passwords = ["love12", "a", "", "zzzz999zz"]
        via_strings = packer.pack_passwords(passwords)
        via_indices = packer.pack_indices(
            np.stack([packer.to_indices(p) for p in passwords])
        )
        assert via_strings.tolist() == via_indices.tolist()

    def test_unpack_inverts_pack(self, packer):
        rng = np.random.default_rng(3)
        index_matrix = rng.integers(0, packer.vocab_size, size=(100, 10))
        canonical = packer._canonical(index_matrix)
        assert (packer.unpack_keys(packer.pack_indices(index_matrix)) == canonical).all()

    def test_junk_after_pad_packs_identically(self, packer):
        clean = packer.to_indices("hi")
        dirty = clean.copy()
        dirty[5] = packer.alphabet.index_of("z")
        assert (
            packer.pack_indices(clean[None, :]) == packer.pack_indices(dirty[None, :])
        ).all()

    def test_wide_alphabet_refuses_packing(self):
        wide = PasswordEncoder(default_alphabet(), max_length=10)
        assert wide.pack_bits is None
        with pytest.raises(ValueError):
            wide.pack_indices(np.zeros((1, 10), dtype=np.int64))
        # narrower max_length fits again
        assert PasswordEncoder(default_alphabet(), max_length=9).pack_bits is not None


class TestDequantization:
    def test_dequantize_preserves_decoding(self, encoder):
        rng = np.random.default_rng(0)
        passwords = ["hello1", "pass99", "x"]
        feats = encoder.encode_batch(passwords)
        noisy = encoder.dequantize(feats, rng)
        assert encoder.decode_batch(noisy) == passwords

    def test_noise_bounded_by_bin(self, encoder):
        rng = np.random.default_rng(1)
        feats = encoder.encode_batch(["abcde"] * 50)
        noisy = encoder.dequantize(feats, rng)
        assert np.max(np.abs(noisy - feats)) <= 0.5 * encoder.bin_width

    def test_clamp_to_data_range(self, encoder):
        clamped = encoder.clamp_to_data_range(np.array([-1.0, 0.5, 2.0]))
        assert np.all((clamped > 0) & (clamped < 1))


@given(
    st.text(alphabet=st.sampled_from(list(compact_alphabet().chars)), min_size=0, max_size=10)
)
@settings(max_examples=80, deadline=None)
def test_roundtrip_property(password):
    encoder = PasswordEncoder(compact_alphabet(), max_length=10)
    assert encoder.decode(encoder.encode(password)) == password


@given(
    st.text(alphabet=st.sampled_from(list(compact_alphabet().chars)), min_size=1, max_size=10),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_dequantized_roundtrip_property(password, seed):
    encoder = PasswordEncoder(compact_alphabet(), max_length=10)
    rng = np.random.default_rng(seed)
    noisy = encoder.dequantize(encoder.encode(password)[None, :], rng)
    assert encoder.decode_batch(noisy) == [password]

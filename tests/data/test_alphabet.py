"""Alphabet semantics."""

import pytest

from repro.data.alphabet import Alphabet, compact_alphabet, default_alphabet


class TestConstruction:
    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Alphabet("aab")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Alphabet("")

    def test_rejects_nul(self):
        with pytest.raises(ValueError):
            Alphabet("a\x00b")

    def test_len_includes_pad(self):
        assert len(Alphabet("abc")) == 4


class TestMapping:
    def test_roundtrip_all_chars(self):
        alpha = default_alphabet()
        for ch in alpha.chars:
            assert alpha.char_at(alpha.index_of(ch)) == ch

    def test_pad_is_index_zero(self):
        alpha = Alphabet("xy")
        assert alpha.char_at(Alphabet.PAD_INDEX) == ""

    def test_index_one_based(self):
        assert Alphabet("abc").index_of("a") == 1

    def test_unknown_char_raises(self):
        with pytest.raises(KeyError):
            Alphabet("abc").index_of("z")

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError):
            Alphabet("abc").char_at(99)

    def test_contains(self):
        alpha = Alphabet("abc")
        assert "a" in alpha and "z" not in alpha


class TestFiltering:
    def test_is_representable(self):
        alpha = compact_alphabet()
        assert alpha.is_representable("love123")
        assert not alpha.is_representable("Love123")  # no uppercase

    def test_filter_representable(self):
        alpha = compact_alphabet()
        kept = alpha.filter_representable(["abc", "A!", "12"])
        assert kept == ["abc", "12"]

    def test_empty_password_representable(self):
        assert compact_alphabet().is_representable("")

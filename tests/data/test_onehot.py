"""One-hot password codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.alphabet import compact_alphabet
from repro.data.onehot import OneHotEncoder


@pytest.fixture
def encoder():
    return OneHotEncoder(compact_alphabet(), max_length=10)


class TestEncode:
    def test_shape_and_rowsums(self, encoder):
        flat = encoder.encode("love12")
        assert flat.shape == (encoder.flat_dim,)
        matrix = flat.reshape(10, encoder.vocab_size)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_padding_positions_hit_pad(self, encoder):
        matrix = encoder.encode("ab").reshape(10, encoder.vocab_size)
        assert np.all(matrix[2:, 0] == 1.0)

    def test_too_long_raises(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode("x" * 11)

    def test_batch_shape(self, encoder):
        assert encoder.encode_batch(["a", "bb"]).shape == (2, encoder.flat_dim)

    def test_empty_batch(self, encoder):
        assert encoder.encode_batch([]).shape == (0, encoder.flat_dim)

    def test_invalid_max_length(self):
        with pytest.raises(ValueError):
            OneHotEncoder(compact_alphabet(), max_length=0)


class TestDecode:
    def test_roundtrip(self, encoder):
        for password in ("love12", "", "a", "0123456789"):
            assert encoder.decode(encoder.encode(password)) == password

    def test_soft_input_argmax(self, encoder):
        soft = encoder.encode("hi") * 0.6 + 0.01  # blurred but argmax intact
        assert encoder.decode(soft) == "hi"

    def test_wrong_size_raises(self, encoder):
        with pytest.raises(ValueError):
            encoder.decode(np.zeros(5))

    def test_batch(self, encoder):
        passwords = ["love", "12", ""]
        assert encoder.decode_batch(encoder.encode_batch(passwords)) == passwords


class TestSmoothing:
    def test_rows_stay_normalized(self, encoder):
        onehot = encoder.encode_batch(["love12"] * 8)
        smoothed = encoder.smooth(onehot, np.random.default_rng(0), gamma=0.05)
        shaped = smoothed.reshape(-1, 10, encoder.vocab_size)
        assert np.allclose(shaped.sum(axis=2), 1.0)

    def test_argmax_preserved_for_small_gamma(self, encoder):
        onehot = encoder.encode_batch(["love12"] * 8)
        smoothed = encoder.smooth(onehot, np.random.default_rng(1), gamma=0.01)
        assert encoder.decode_batch(smoothed) == ["love12"] * 8

    def test_gamma_validation(self, encoder):
        with pytest.raises(ValueError):
            encoder.smooth(encoder.encode("a"), np.random.default_rng(0), gamma=0.0)


@given(st.text(alphabet=st.sampled_from(list(compact_alphabet().chars)), max_size=10))
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(password):
    encoder = OneHotEncoder(compact_alphabet(), max_length=10)
    assert encoder.decode(encoder.encode(password)) == password

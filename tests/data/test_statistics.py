"""Corpus statistics (the substitution-validation toolkit)."""

from collections import Counter

import numpy as np
import pytest

from repro.data.statistics import (
    charclass_mix,
    compare,
    head_mass,
    length_histogram,
    positional_entropy,
    summarize,
    zipf_exponent,
)


class TestZipf:
    def test_perfect_zipf_recovered(self):
        # counts ~ 1/rank  =>  exponent ~ 1
        counts = [int(10000 / r) for r in range(1, 101)]
        assert abs(zipf_exponent(counts) - 1.0) < 0.05

    def test_uniform_is_flat(self):
        assert abs(zipf_exponent([50] * 100)) < 1e-9

    def test_needs_three(self):
        with pytest.raises(ValueError):
            zipf_exponent([5, 3])


class TestPositionalEntropy:
    def test_constant_position_zero_entropy(self):
        entropies = positional_entropy(["aX", "aY", "aZ"], max_length=2)
        assert entropies[0] == 0.0
        assert entropies[1] > 1.5

    def test_padding_dominates_tail(self):
        entropies = positional_entropy(["ab", "cd"], max_length=5)
        assert all(e == 0.0 for e in entropies[2:])  # always PAD

    def test_length_matches_max(self):
        assert len(positional_entropy(["abc"], max_length=7)) == 7


class TestMixAndHistogram:
    def test_charclass_fractions(self):
        mix = charclass_mix(["ab1!"])
        assert mix == {"digit": 0.25, "letter": 0.5, "symbol": 0.25}

    def test_charclass_empty_raises(self):
        with pytest.raises(ValueError):
            charclass_mix([""])

    def test_length_histogram_sums_to_one(self):
        hist = length_histogram(["a", "bb", "cc", "ddd"])
        assert abs(sum(hist.values()) - 1.0) < 1e-12

    def test_head_mass(self):
        counter = Counter({"a": 8, "b": 1, "c": 1})
        assert head_mass(counter, top=1) == 0.8


class TestSummarize:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_synthetic_corpus_looks_like_a_leak(self, corpus):
        stats = summarize(corpus)
        assert stats.duplication_rate > 0.1          # real leaks repeat a lot
        assert stats.top10_mass > 0.05               # heavy head
        assert 0.3 < stats.zipf_exponent < 2.0       # Zipf-ish slope
        assert 4.0 < stats.mean_length <= 10.0
        assert stats.charclass_mix["letter"] > stats.charclass_mix["digit"]

    def test_compare_keys(self, corpus):
        stats = summarize(corpus[:1000])
        comparison = compare(stats, summarize(corpus[1000:2000]))
        assert set(comparison) == {
            "duplication_rate", "top10_mass", "zipf_exponent", "mean_length",
        }
        for ours, theirs in comparison.values():
            assert np.isfinite(ours) and np.isfinite(theirs)

"""Mangling rules and the rule engine."""

import numpy as np
import pytest

from repro.data import mangling


class TestDeterministicRules:
    def test_identity(self):
        assert mangling.identity("love") == "love"

    def test_capitalize(self):
        assert mangling.capitalize("love") == "Love"
        assert mangling.capitalize("") == ""

    def test_uppercase_reverse(self):
        assert mangling.uppercase("ab") == "AB"
        assert mangling.reverse("abc") == "cba"

    def test_leet_full(self):
        assert mangling.leet("least") == "l3457"

    def test_leet_map_covers_expected(self):
        assert mangling.LEET_MAP["a"] == "4"
        assert mangling.LEET_MAP["o"] == "0"


class TestStochasticRules:
    def test_append_digits_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            out = mangling.append_digits("word", rng, max_digits=3)
            suffix = out[len("word"):]
            assert 1 <= len(suffix) <= 3 and suffix.isdigit()

    def test_append_year_plausible(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            suffix = mangling.append_year("w", rng)[1:]
            assert len(suffix) in (2, 4) and suffix.isdigit()
            if len(suffix) == 4:
                assert 1950 <= int(suffix) <= 2022

    def test_append_symbol(self):
        rng = np.random.default_rng(2)
        out = mangling.append_symbol("word", rng)
        assert len(out) == 5 and out[-1] in "!.@#*_-?"

    def test_leet_partial_probability_extremes(self):
        rng = np.random.default_rng(3)
        assert mangling.leet_partial("least", rng, probability=0.0) == "least"
        assert mangling.leet_partial("least", rng, probability=1.0) == "l3457"


class TestRuleEngine:
    def test_expand_contains_deterministic_forms(self):
        engine = mangling.RuleEngine(np.random.default_rng(0))
        guesses = set(engine.expand(["love"], samples_per_word=0))
        assert {"love", "Love", "LOVE", "evol", "l0v3"} <= guesses

    def test_expand_count(self):
        engine = mangling.RuleEngine(np.random.default_rng(0))
        guesses = engine.expand(["a", "b"], samples_per_word=3)
        assert len(guesses) == 2 * (len(mangling.DETERMINISTIC_RULES) + 3)

    def test_stochastic_variant_keeps_stem(self):
        engine = mangling.RuleEngine(np.random.default_rng(4))
        for _ in range(30):
            out = engine.stochastic_variant("word")
            assert out.lower().startswith("w")

"""Real-password-file loader."""

import pytest

from repro.data.alphabet import compact_alphabet
from repro.data.rockyou import load_password_file


@pytest.fixture
def password_file(tmp_path):
    path = tmp_path / "leak.txt"
    path.write_text(
        "\n".join(
            [
                "love123",
                "thispasswordistoolong",
                "UPPER",  # not representable in compact alphabet
                "",
                "qwerty",
                "short",
            ]
        ),
        encoding="latin-1",
    )
    return path


class TestLoader:
    def test_filters_length_and_alphabet(self, password_file):
        kept = load_password_file(password_file, alphabet=compact_alphabet())
        assert kept == ["love123", "qwerty", "short"]

    def test_limit(self, password_file):
        kept = load_password_file(password_file, alphabet=compact_alphabet(), limit=2)
        assert kept == ["love123", "qwerty"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_password_file(tmp_path / "nope.txt")

    def test_max_length_override(self, password_file):
        kept = load_password_file(
            password_file, alphabet=compact_alphabet(), max_length=5
        )
        assert kept == ["short"]

    def test_default_alphabet_keeps_upper(self, password_file):
        kept = load_password_file(password_file)
        assert "UPPER" in kept

"""Synthetic RockYou generator: determinism, structure, validation."""

import numpy as np
import pytest

from repro.data.alphabet import compact_alphabet, default_alphabet
from repro.data.synthetic import (
    COMMON_HEAD,
    SyntheticConfig,
    SyntheticRockYou,
)


def make_generator(seed=0, **config_kwargs):
    return SyntheticRockYou(
        np.random.default_rng(seed),
        SyntheticConfig(**config_kwargs) if config_kwargs else None,
        default_alphabet(),
    )


class TestBasics:
    def test_deterministic_with_seed(self):
        a = make_generator(seed=5).generate(200)
        b = make_generator(seed=5).generate(200)
        assert a == b

    def test_different_seeds_differ(self):
        assert make_generator(seed=1).generate(100) != make_generator(seed=2).generate(100)

    def test_lengths_bounded(self):
        for password in make_generator().generate(500):
            assert 1 <= len(password) <= 10

    def test_all_representable(self):
        alpha = default_alphabet()
        assert all(alpha.is_representable(p) for p in make_generator().generate(500))

    def test_count_zero(self):
        assert make_generator().generate(0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            make_generator().generate(-1)


class TestDistribution:
    def test_has_duplicates_like_a_leak(self):
        corpus = make_generator().generate(3000)
        assert len(set(corpus)) < len(corpus)

    def test_head_passwords_frequent(self):
        corpus = make_generator().generate(5000)
        top = COMMON_HEAD[0]  # "123456"
        assert corpus.count(top) >= 20  # zipf head dominates

    def test_contains_digit_suffixed_words(self):
        corpus = set(make_generator().generate(5000))
        assert any(p[:-1].isalpha() and p[-1].isdigit() for p in corpus)

    def test_compact_alphabet_lowercases(self):
        gen = SyntheticRockYou(np.random.default_rng(0), None, compact_alphabet())
        assert all(p == p.lower() for p in gen.generate(500))


class TestConfig:
    def test_vocabulary_slicing_restricts_stems(self):
        small = make_generator(seed=3, vocabulary_size=5, pattern_weights={"word": 1.0})
        words = set(small.generate(300))
        assert len(words) <= 5

    def test_vocabulary_size_zero_raises(self):
        with pytest.raises(ValueError):
            make_generator(vocabulary_size=0)

    def test_max_suffix_digits_respected(self):
        gen = make_generator(
            seed=4, max_suffix_digits=1, pattern_weights={"word_digits": 1.0}
        )
        for password in gen.generate(300):
            digits = len(password) - len(password.rstrip("0123456789"))
            assert digits <= 1

    def test_empty_weights_raise(self):
        with pytest.raises(ValueError):
            make_generator(pattern_weights={})

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            make_generator(pattern_weights={"word": -1.0})

    def test_single_pattern_only(self):
        gen = make_generator(seed=6, pattern_weights={"digits_only": 1.0})
        assert all(p.isdigit() for p in gen.generate(200))

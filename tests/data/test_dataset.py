"""Dataset split, cleaning and batching (the Sec. IV-D pipeline)."""

import numpy as np
import pytest

from repro.data.alphabet import compact_alphabet
from repro.data.dataset import PasswordDataset, clean_test_set, train_test_split
from repro.data.encoding import PasswordEncoder


@pytest.fixture
def encoder():
    return PasswordEncoder(compact_alphabet(), max_length=10)


class TestSplit:
    def test_fraction_respected(self, rng):
        train, test = train_test_split([f"pw{i}" for i in range(100)], rng, 0.8)
        assert len(train) == 80 and len(test) == 20

    def test_partition_is_complete(self, rng):
        corpus = [f"pw{i}" for i in range(50)]
        train, test = train_test_split(corpus, rng)
        assert sorted(train + test) == sorted(corpus)

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(ValueError):
            train_test_split(["a"], rng, 1.0)


class TestCleaning:
    def test_removes_duplicates(self):
        assert clean_test_set(["a", "a", "b"], []) == ["a", "b"]

    def test_removes_train_intersection(self):
        assert clean_test_set(["a", "b", "c"], ["b"]) == ["a", "c"]

    def test_preserves_order(self):
        assert clean_test_set(["z", "a", "z", "m"], []) == ["z", "a", "m"]

    def test_empty_inputs(self):
        assert clean_test_set([], ["x"]) == []


class TestPasswordDataset:
    def test_empty_train_raises(self, encoder):
        with pytest.raises(ValueError):
            PasswordDataset([], ["x"], encoder)

    def test_test_cleaned_on_construction(self, encoder):
        ds = PasswordDataset(["love1"], ["love1", "love2", "love2"], encoder)
        assert ds.test == ["love2"]

    def test_test_set_property(self, encoder):
        ds = PasswordDataset(["a"], ["b", "c"], encoder)
        assert ds.test_set == {"b", "c"}

    def test_train_features_cached_shape(self, encoder):
        ds = PasswordDataset(["abc", "de"], [], encoder)
        feats = ds.train_features
        assert feats.shape == (2, 10)
        assert ds.train_features is feats  # cached

    def test_stats(self, encoder):
        ds = PasswordDataset(["aa", "aa", "bbbb"], ["aa", "cc"], encoder)
        stats = ds.stats()
        assert stats.train_size == 3
        assert stats.train_unique == 2
        assert stats.test_size_clean == 1  # "aa" removed
        assert abs(stats.mean_length - (2 + 2 + 4) / 3) < 1e-9

    def test_frequency_table(self, encoder):
        ds = PasswordDataset(["x", "x", "y"], [], encoder)
        assert ds.frequency_table(1) == [("x", 2)]


class TestBatches:
    def test_batches_cover_epoch(self, encoder, rng):
        ds = PasswordDataset([f"pw{i}" for i in range(10)], [], encoder)
        total = sum(len(b) for b in ds.batches(3, rng))
        assert total == 10

    def test_batch_shapes(self, encoder, rng):
        ds = PasswordDataset([f"pw{i}" for i in range(8)], [], encoder)
        batches = list(ds.batches(4, rng, dequantize=False))
        assert all(b.shape == (4, 10) for b in batches)

    def test_dequantize_changes_values(self, encoder, rng):
        ds = PasswordDataset(["abcdef"] * 6, [], encoder)
        clean = next(ds.batches(6, np.random.default_rng(0), dequantize=False))
        noisy = next(ds.batches(6, np.random.default_rng(0), dequantize=True))
        assert not np.allclose(clean, noisy)
        assert np.max(np.abs(clean - noisy)) <= 0.5 * encoder.bin_width

    def test_invalid_batch_size(self, encoder, rng):
        ds = PasswordDataset(["a"], [], encoder)
        with pytest.raises(ValueError):
            list(ds.batches(0, rng))

    def test_shuffling_differs_across_epochs(self, encoder):
        ds = PasswordDataset([f"pw{i}" for i in range(64)], [], encoder)
        rng = np.random.default_rng(0)
        first = np.concatenate(list(ds.batches(64, rng, dequantize=False)))
        second = np.concatenate(list(ds.batches(64, rng, dequantize=False)))
        assert not np.allclose(first, second)

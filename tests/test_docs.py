"""Documentation link integrity: docs/ and README cross-references resolve.

Every relative markdown link in ``docs/*.md`` and ``README.md`` must point
at a file that exists in the repository (and, for ``#fragment`` links, at
a heading that exists in the target file).  External ``http(s)`` links are
out of scope -- the suite must pass offline.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

#: ``[text](target)`` links, excluding images; fenced code blocks are
#: stripped before matching so example markdown doesn't count.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
FENCE = re.compile(r"```.*?```", re.DOTALL)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (enough of it for our docs)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    return {github_slug(h) for h in HEADING.findall(path.read_text())}


def links_of(path: Path):
    text = FENCE.sub("", path.read_text())
    return LINK.findall(text)


def test_docs_exist():
    """The docs subsystem ships every guide plus the README."""
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md",
        "architecture.md",
        "strategies.md",
        "parallel.md",
        "kernels.md",
    } <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(path):
    broken = []
    for target in links_of(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        if file_part and not resolved.exists():
            broken.append(f"{target} (missing file)")
            continue
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in anchors_of(resolved):
                broken.append(f"{target} (missing heading)")
    assert not broken, f"broken links in {path.name}:\n  " + "\n  ".join(broken)


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_no_stale_contract_phrases(path):
    """Phrases describing the pre-keyed-transport world must not reappear."""
    text = path.read_text()
    assert "Not available with ``track_deltas``" not in text
    assert "does not track deltas" not in text

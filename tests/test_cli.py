"""CLI end-to-end tests (tiny workloads, real subprocess-free invocation)."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.txt"
    main(["synthesize", "--count", "2000", "--out", str(path), "--seed", "3"])
    return path


@pytest.fixture(scope="module")
def model_file(tmp_path_factory, corpus_file):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    main(
        [
            "train",
            "--corpus", str(corpus_file),
            "--out", str(path),
            "--train-size", "600",
            "--couplings", "4",
            "--hidden", "24",
            "--epochs", "4",
        ]
    )
    return path


class TestSynthesize:
    def test_writes_requested_count(self, corpus_file):
        lines = corpus_file.read_text().strip().splitlines()
        assert len(lines) == 2000
        assert all(1 <= len(line) <= 10 for line in lines)


class TestTrain:
    def test_checkpoint_created_and_loadable(self, model_file):
        from repro.core.model import PassFlow

        model = PassFlow.load(model_file)
        assert model.history.nll


class TestSample:
    def test_prints_passwords(self, model_file, capsys):
        assert main(["sample", "--model", str(model_file), "--count", "7"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 7


class TestAttack:
    @pytest.mark.parametrize("strategy", ["static", "dynamic", "dynamic+gs"])
    def test_strategies_run(self, model_file, corpus_file, capsys, strategy):
        code = main(
            [
                "attack",
                "--model", str(model_file),
                "--corpus", str(corpus_file),
                "--strategy", strategy,
                "--budgets", "100,300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matched" in out and "300" in out

    def test_report_json_dump(self, corpus_file, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        code = main(
            [
                "attack",
                "--corpus", str(corpus_file),
                "--strategy", "markov:3",
                "--budgets", "100,300",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["method"] == "Markov-3"
        assert payload["budgets"] == [100, 300]
        assert [row["guesses"] for row in payload["rows"]] == [100, 300]
        assert payload["workers"] == 1
        assert "matched_samples" in payload and "non_matched_samples" in payload

    def test_parallel_workers_deterministic(self, corpus_file, tmp_path, capsys):
        import json

        reports = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main(
                [
                    "attack",
                    "--corpus", str(corpus_file),
                    "--strategy", "markov:3",
                    "--budgets", "100,300",
                    "--workers", "2",
                    "--report", str(path),
                ]
            ) == 0
            reports.append(json.loads(path.read_text()))
        assert reports[0]["rows"] == reports[1]["rows"]
        assert reports[0]["workers"] == 2

    def test_elastic_schedule_deterministic(self, corpus_file, tmp_path, capsys):
        import json

        reports = []
        for name in ("ea.json", "eb.json"):
            path = tmp_path / name
            assert main(
                [
                    "attack",
                    "--corpus", str(corpus_file),
                    "--strategy", "markov:3",
                    "--budgets", "100,300",
                    "--workers", "2",
                    "--schedule", "elastic",
                    "--report", str(path),
                ]
            ) == 0
            reports.append(json.loads(path.read_text()))
        assert reports[0]["rows"] == reports[1]["rows"]
        assert reports[0]["schedule"] == "elastic"
        assert [row["guesses"] for row in reports[0]["rows"]] == [100, 300]

    def test_unknown_schedule_rejected(self, corpus_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "attack",
                    "--corpus", str(corpus_file),
                    "--strategy", "markov:3",
                    "--schedule", "eager",
                ]
            )

    def test_workers_must_be_positive(self, corpus_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "attack",
                    "--corpus", str(corpus_file),
                    "--strategy", "markov:3",
                    "--workers", "0",
                ]
            )

    def test_budgets_must_be_positive(self, corpus_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "attack",
                    "--corpus", str(corpus_file),
                    "--strategy", "markov:3",
                    "--budgets", "0,100",
                ]
            )


class TestExecutorFlag:
    def _attack(self, corpus_file, path, executor, schedule="elastic"):
        import json

        assert main(
            [
                "attack",
                "--corpus", str(corpus_file),
                "--strategy", "markov:3",
                "--budgets", "100,300",
                "--workers", "2",
                "--schedule", schedule,
                "--executor", executor,
                "--report", str(path),
            ]
        ) == 0
        return json.loads(path.read_text())

    def test_processpool_report_matches_local(self, corpus_file, tmp_path, capsys):
        """The acceptance check: same report bytes modulo the executor stamp."""
        local = self._attack(corpus_file, tmp_path / "local.json", "local")
        pool = self._attack(corpus_file, tmp_path / "pool.json", "processpool")
        assert local.pop("executor") == "local"
        assert pool.pop("executor") == "processpool"
        assert local == pool

    def test_default_reports_stamp_auto(self, corpus_file, tmp_path, capsys):
        import json

        path = tmp_path / "auto.json"
        assert main(
            [
                "attack",
                "--corpus", str(corpus_file),
                "--strategy", "markov:3",
                "--budgets", "100",
                "--report", str(path),
            ]
        ) == 0
        assert json.loads(path.read_text())["executor"] == "auto"

    def test_impossible_combo_exits_with_one_liner(self, corpus_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "attack",
                    "--corpus", str(corpus_file),
                    "--strategy", "markov:3",
                    "--workers", "2",
                    "--executor", "worksteal",
                ]
            )
        assert "only runs elastic" in str(excinfo.value)

    def test_unknown_executor_exits_with_choices(self, corpus_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "attack",
                    "--corpus", str(corpus_file),
                    "--strategy", "markov:3",
                    "--workers", "2",
                    "--executor", "threads",
                ]
            )
        assert "processpool" in str(excinfo.value)


class TestKernelsEnvRestore:
    def _attack(self, corpus_file, capsys):
        assert main(
            [
                "attack",
                "--corpus", str(corpus_file),
                "--strategy", "markov:3",
                "--budgets", "100",
                "--kernels", "numpy",
            ]
        ) == 0
        capsys.readouterr()

    def test_kernels_flag_does_not_leak_into_environ(
        self, corpus_file, capsys, monkeypatch
    ):
        """Regression: --kernels exported REPRO_KERNELS permanently, silently
        repointing every later in-process kernels.select(None) call."""
        import os

        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        self._attack(corpus_file, capsys)
        assert "REPRO_KERNELS" not in os.environ

    def test_prior_env_value_is_restored(self, corpus_file, capsys, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_KERNELS", "reference")
        self._attack(corpus_file, capsys)
        assert os.environ["REPRO_KERNELS"] == "reference"


class TestLatentCommands:
    def test_interpolate(self, model_file, capsys):
        assert main(["interpolate", "--model", str(model_file), "love12", "123456"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("love12") and out.strip().endswith("123456")

    def test_conditional(self, model_file, capsys):
        code = main(
            ["conditional", "--model", str(model_file), "love**",
             "--population", "32", "--rounds", "2", "--top-k", "4"]
        )
        assert code == 0
        for line in capsys.readouterr().out.strip().splitlines():
            assert line.startswith("love") and len(line) == 6

    def test_strength(self, model_file, corpus_file, capsys):
        code = main(
            ["strength", "--model", str(model_file), "--corpus", str(corpus_file),
             "love12", "zq8kfp"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "percentile" in out and "band" in out
        assert "ms/password" in out  # the per-password timing line

    def test_strength_scores_in_ceil_n_over_batch_flow_calls(
        self, model_file, corpus_file, capsys, monkeypatch
    ):
        """The batch-vectorized seam: N passwords != N flow evaluations."""
        from repro.core.model import PassFlow

        calls = []
        real = PassFlow.log_prob

        def counting(self, passwords):
            calls.append(len(passwords))
            return real(self, passwords)

        monkeypatch.setattr(PassFlow, "log_prob", counting)
        passwords = [f"pw{i}" for i in range(5)]
        code = main(
            ["strength", "--model", str(model_file), "--corpus", str(corpus_file),
             "--batch", "2", *passwords]
        )
        assert code == 0
        capsys.readouterr()
        # 1 calibration pass + ceil(5/2) scoring chunks, nothing per-password
        assert len(calls) == 1 + 3

    def test_strength_unscorable_password_is_reported_not_fatal(
        self, model_file, corpus_file, capsys
    ):
        code = main(
            ["strength", "--model", str(model_file), "--corpus", str(corpus_file),
             "love12", "ÅNGSTRÖM-É"]
        )
        assert code == 0
        assert "unscorable" in capsys.readouterr().out


class TestServe:
    def test_once_mode_scores_from_stdin(self, model_file, corpus_file, capsys, monkeypatch):
        import io
        import json

        lines = "\n".join(
            [
                json.dumps({"op": "ping"}),
                json.dumps({"op": "score", "password": "love12", "id": 1}),
                "not even json",
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        code = main(
            ["serve", "--once",
             "--spec", f"strength?model={model_file}&corpus={corpus_file}"]
        )
        assert code == 0
        responses = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert [r["ok"] for r in responses] == [True, True, False]
        assert 0 <= responses[1]["score"] <= 4

    def test_bad_spec_is_one_actionable_line(self, tmp_path):
        with pytest.raises(SystemExit, match="model="):
            main(["serve", "--once", "--spec", "strength?corpus=x"])

    def test_socket_and_port_are_mutually_required(self, model_file, corpus_file):
        with pytest.raises(SystemExit, match="exactly one"):
            main(
                ["serve",
                 "--spec", f"strength?model={model_file}&corpus={corpus_file}"]
            )


@pytest.fixture(scope="module")
def bank_dir(tmp_path_factory, corpus_file):
    path = tmp_path_factory.mktemp("cli") / "markov3.bank"
    code = main(
        [
            "bank", "build",
            "--strategy", "markov:3",
            "--corpus", str(corpus_file),
            "--budget", "2000",
            "--out", str(path),
            "--seed", "9",
        ]
    )
    assert code == 0
    return path


class TestBank:
    def test_build_then_info(self, bank_dir, capsys):
        assert main(["bank", "info", str(bank_dir)]) == 0
        out = capsys.readouterr().out
        assert "markov:3" in out and "total:      2000" in out

    def test_verify_clean(self, bank_dir, capsys):
        assert main(["bank", "verify", str(bank_dir)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_verify_corrupt_exits_nonzero(self, bank_dir, tmp_path, capsys):
        import shutil

        broken = tmp_path / "broken.bank"
        shutil.copytree(bank_dir, broken)
        keys_path = broken / "keys.npy"
        data = bytearray(keys_path.read_bytes())
        data[-1] ^= 0xFF
        keys_path.write_bytes(bytes(data))
        assert main(["bank", "verify", str(broken)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_build_refuses_feedback_strategy(self, model_file, corpus_file, tmp_path):
        with pytest.raises(SystemExit, match="replayable"):
            main(
                [
                    "bank", "build",
                    "--strategy", "passflow:dynamic",
                    "--model", str(model_file),
                    "--corpus", str(corpus_file),
                    "--budget", "100",
                    "--out", str(tmp_path / "dyn.bank"),
                ]
            )

    def test_attack_bank_matches_live(self, bank_dir, corpus_file, tmp_path, capsys):
        import json

        live_path = tmp_path / "live.json"
        main(
            [
                "attack",
                "--corpus", str(corpus_file),
                "--strategy", "markov:3",
                "--budgets", "200,800",
                "--seed", "9",
                "--report", str(live_path),
            ]
        )
        replay_path = tmp_path / "replay.json"
        code = main(
            [
                "attack",
                "--bank", str(bank_dir),
                "--corpus", str(corpus_file),
                "--budgets", "200,800",
                "--seed", "9",
                "--workers", "2",
                "--report", str(replay_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        live = json.loads(live_path.read_text())
        replay = json.loads(replay_path.read_text())
        for key in ("rows", "matched_samples", "non_matched_samples", "method"):
            assert replay[key] == live[key]

    def test_attack_bank_budget_overflow_exits(self, bank_dir, corpus_file):
        with pytest.raises(SystemExit, match="cannot be replayed"):
            main(
                [
                    "attack",
                    "--bank", str(bank_dir),
                    "--corpus", str(corpus_file),
                    "--budgets", "100,999999",
                ]
            )


class TestStrategies:
    def test_bankable_column(self, capsys):
        assert main(["strategies", "--bankable"]) == 0
        out = capsys.readouterr().out
        assert "bankable" in out
        assert "feedback-free sampler" in out
        assert "static/conditional only" in out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_alphabet_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["synthesize", "--count", "1", "--out", str(tmp_path / "x"),
                  "--alphabet", "klingon"])

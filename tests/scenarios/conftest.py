"""Scenario-suite conftest: registers the test strategy families.

Importing :mod:`scenario_enum` is what registers ``enum`` and
``encodedenum``; keeping the classes in a plain module (pytest puts this
directory on ``sys.path``) lets test files import the vocabulary and
reference functions directly.
"""

import scenario_enum  # noqa: F401  (import registers the families)

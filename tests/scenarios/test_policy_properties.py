"""Policy wrapper properties: exact filtering, mask parity, determinism.

The load-bearing contracts, hypothesis-checked:

* the wrapped stream is *exactly* the unwrapped stream minus the
  nonconforming guesses -- equality against the scalar reference
  predicate, not a statistical claim;
* the vectorized index-matrix mask agrees bitwise with the string path
  on arbitrary passwords and arbitrary policies;
* policy-filtered parallel attacks are bit-identical across repeated
  runs for every (workers, schedule, executor) configuration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.alphabet import default_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.encoding import PasswordEncoder
from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ProcessPoolExecutor,
    StrategySource,
)
from repro.scenarios import CompositionPolicy
from repro.strategies import SpecError, build, parse_spec, take, unwrap_spec

from scenario_enum import VOCAB, enum_password

ALPHABET = default_alphabet()
ENCODER = PasswordEncoder(ALPHABET)

# hypothesis-drawn passwords over the full alphabet, encoder-length capped
password_st = st.text(alphabet=ALPHABET.chars, min_size=0, max_size=10)

# hypothesis-drawn policies: any (min, span, classes, deny) combination
policy_st = st.builds(
    lambda min_len, span, classes, deny: CompositionPolicy(
        min_len=min_len,
        max_len=None if span is None else min_len + span,
        classes="".join(classes),
        deny=tuple(deny),
    ),
    min_len=st.integers(min_value=0, max_value=8),
    span=st.none() | st.integers(min_value=0, max_value=6),
    classes=st.sets(st.sampled_from("luds")),
    deny=st.sets(st.sampled_from(VOCAB), max_size=3),
)


class TestPolicyPredicate:
    @given(password=password_st, policy=policy_st)
    @settings(max_examples=200, deadline=None)
    def test_conforms_matches_definition(self, password, policy):
        """The scalar reference is the policy definition, literally."""
        classes = {
            ("l" if c.islower() else "u" if c.isupper() else "d" if c.isdigit() else "s")
            for c in password
        }
        expected = (
            policy.min_len <= len(password)
            and (policy.max_len is None or len(password) <= policy.max_len)
            and set(policy.classes) <= classes
            and not any(pattern in password for pattern in policy.deny)
        )
        assert policy.conforms(password) == expected

    @given(passwords=st.lists(password_st, max_size=40), policy=policy_st)
    @settings(max_examples=150, deadline=None)
    def test_mask_indices_matches_mask_strings_bitwise(self, passwords, policy):
        """The vectorized encoded mask is the string path, exactly."""
        matrix = ENCODER.indices_from_strings(passwords)
        string_mask = policy.mask_strings(passwords)
        index_mask = policy.mask_indices(matrix, ENCODER)
        np.testing.assert_array_equal(index_mask, string_mask)

    def test_mask_indices_on_empty_batch(self):
        policy = CompositionPolicy(min_len=6, classes="ld")
        matrix = ENCODER.indices_from_strings([])
        assert policy.mask_indices(matrix, ENCODER).shape == (0,)


class TestPolicyValidation:
    def test_rejects_bad_class_code(self):
        with pytest.raises(ValueError, match="class"):
            CompositionPolicy(classes="lx")

    def test_rejects_min_over_max(self):
        with pytest.raises(ValueError, match="max_len"):
            CompositionPolicy(min_len=9, max_len=4)

    def test_rejects_comma_in_deny_entry(self):
        with pytest.raises(ValueError, match="deny"):
            CompositionPolicy(deny=("a,b",))

    def test_from_params_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="nope"):
            CompositionPolicy.from_params({"nope": "1"})

    def test_normalizes_classes_and_deny(self):
        policy = CompositionPolicy(classes="ddlu", deny=("b", "a", "b"))
        assert policy.classes == "dlu"
        assert policy.deny == ("a", "b")


class TestWrapperSpecs:
    def test_wrap_and_canonical_round_trip(self):
        policy = CompositionPolicy(min_len=8, classes="lud")
        spec = policy.wrap("markov:3")
        assert spec == "policy(markov:3)?classes=dlu&min_len=8"
        parsed = parse_spec(spec)
        assert parsed.family == "policy"
        assert parsed.inner == "markov:3"
        assert parsed.canonical() == spec
        assert unwrap_spec(spec).family == "markov"

    def test_nested_wrappers_round_trip(self):
        spec = "policy(mangle(markov:3)?rules=leet)?min_len=8"
        parsed = parse_spec(spec)
        assert parsed.inner == "mangle(markov:3)?rules=leet"
        assert parsed.canonical() == spec
        assert unwrap_spec(spec).family == "markov"

    def test_wrapper_rejects_variant(self):
        with pytest.raises(SpecError, match="variant"):
            parse_spec("policy:strict(markov:3)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("policy(markov:3")

    def test_policy_spec_requires_inner(self):
        with pytest.raises(SpecError, match="wraps another spec"):
            build("policy?min_len=8")

    def test_built_describe_is_canonical(self):
        strategy = build("policy(enum)?min_len=6&classes=dl")
        assert strategy.describe() == "policy(enum)?classes=dl&min_len=6"
        assert strategy.name == "Enum+Policy"
        assert strategy.replayable


class TestFilteredStream:
    @given(policy=policy_st)
    @settings(max_examples=40, deadline=None)
    def test_stream_equals_scalar_reference_filter(self, policy):
        """Wrapped stream == unwrapped stream minus nonconforming guesses."""
        rng = np.random.default_rng(0)
        raw = take(build("enum?batch=37"), 1500, rng)
        reference = [g for g in raw if policy.conforms(g)][:300]
        wrapped = build(
            "policy(enum?batch=37)?"
            + "&".join(f"{k}={v}" for k, v in policy.spec_params().items())
            if policy.spec_params()
            else "policy(enum?batch=37)"
        )
        assert take(wrapped, len(reference), rng) == reference

    @given(policy=policy_st)
    @settings(max_examples=25, deadline=None)
    def test_encoded_path_equals_string_path(self, policy):
        """policy(encodedenum) emits the same guesses as policy(enum)."""
        params = policy.spec_params()
        query = "?" + "&".join(f"{k}={v}" for k, v in params.items()) if params else ""
        rng = np.random.default_rng(0)
        via_strings = take(build(f"policy(enum){query}"), 200, rng)
        via_encoded = take(build(f"policy(encodedenum){query}"), 200, rng)
        assert via_encoded == via_strings

    def test_starved_stream_dries_after_patience(self):
        # no enum guess exceeds the 10-char codec cap; without the
        # patience guard this would spin on the infinite inner stream
        strategy = build("policy(enum?batch=64)?min_len=11&patience=1000")
        assert take(strategy, 50, np.random.default_rng(0)) == []

    def test_conforming_guesses_reset_patience(self):
        # patience far below the total drop count, but conformant
        # guesses arrive regularly -- the guard must never fire
        strategy = build("policy(enum?batch=16)?min_len=6&classes=dl&patience=40")
        assert len(take(strategy, 300, np.random.default_rng(0))) == 300


class TestParallelDeterminism:
    BUDGETS = [64, 256]
    SPEC = "policy(enum?batch=16)?min_len=6&classes=dl"

    @staticmethod
    def _test_set():
        return {enum_password(n) for n in range(40, 160)}

    @classmethod
    def _run(cls, workers, schedule, executor):
        engine = ParallelAttackEngine(
            cls._test_set(),
            cls.BUDGETS,
            workers=workers,
            schedule=schedule,
            executor=executor,
        )
        report = engine.run(StrategySource(cls.SPEC), seed=7)
        return (
            [(r.guesses, r.unique, r.matched, r.match_percent) for r in report.rows],
            report.matched_samples,
            report.non_matched_samples,
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("schedule", ["static", "elastic"])
    def test_repeat_runs_bit_identical_local(self, workers, schedule):
        first = self._run(workers, schedule, LocalExecutor())
        second = self._run(workers, schedule, LocalExecutor())
        assert first == second

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("schedule", ["static", "elastic"])
    def test_processpool_matches_local(self, workers, schedule):
        """The pool executor reproduces the in-process report bytes."""
        local = self._run(workers, schedule, LocalExecutor())
        pooled = self._run(workers, schedule, ProcessPoolExecutor())
        assert pooled == local

    def test_workers_one_matches_scalar_reference(self):
        """The parallel engine at workers=1 emits the reference stream."""
        policy = CompositionPolicy(min_len=6, classes="dl")
        rows, matched, _ = self._run(1, "static", LocalExecutor())
        raw = take(build("enum?batch=16"), 5000, np.random.default_rng(0))
        reference = [g for g in raw if policy.conforms(g)][: self.BUDGETS[-1]]
        expected_matched = set(reference) & self._test_set()
        assert rows[-1][2] == len(expected_matched)
        assert set(matched) <= expected_matched


class TestDatasetFilter:
    def test_test_filter_applied_after_cleaning(self):
        policy = CompositionPolicy(min_len=6, classes="dl")
        train = ["monkey11", "abc"]
        test_raw = ["monkey11", "drag0nfly", "short", "drag0nfly", "UPPER99x"]
        dataset = PasswordDataset(
            train, test_raw, ENCODER, test_filter=policy.conforms
        )
        # monkey11 is train-intersection, short fails min_len, UPPER99x
        # conforms (has lower+digit), duplicates collapse
        assert dataset.test == ["drag0nfly", "UPPER99x"]

    def test_training_side_never_filtered(self):
        policy = CompositionPolicy(min_len=20)
        dataset = PasswordDataset(
            ["abc", "de"], ["xyz"], ENCODER, test_filter=policy.conforms
        )
        assert dataset.train == ["abc", "de"]
        assert dataset.test == []

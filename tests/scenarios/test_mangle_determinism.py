"""Mangle wrapper determinism: the expansion commutes with the runtime.

The contracts under test:

* ``expand`` is a pure function of ``(word, rules, variants, keep,
  seed)`` -- independent of call order and of any shared RNG state;
* the mangled stream is bit-identical across schedules, executors and
  elastic chunk sizes for a fixed (seed, spec, workers);
* wrapper-of-bank == wrapper-of-live: mangling a bank replay of a
  replayable inner yields the live wrapper's exact stream;
* specs canonicalize (rules are a sorted set) and round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bank import build_bank
from repro.data.alphabet import compact_alphabet
from repro.data.encoding import PasswordEncoder
from repro.data.mangling import RULE_NAMES, STOCHASTIC_RULES, apply_rule
from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ProcessPoolExecutor,
    StrategySource,
)
from repro.strategies import SpecError, build, parse_spec, take
from repro.utils.rng import spawn_rng

from scenario_enum import enum_password

words_st = st.lists(
    st.text(alphabet="abcdefgh123", min_size=1, max_size=6),
    min_size=1,
    max_size=12,
)
rules_st = st.sets(st.sampled_from(RULE_NAMES), min_size=1, max_size=4)


def rows_of(report):
    return [(r.guesses, r.unique, r.matched, r.match_percent) for r in report.rows]


class TestExpandDeterminism:
    @given(words=words_st, rules=rules_st, variants=st.integers(1, 3), seed=st.integers(0, 99))
    @settings(max_examples=80, deadline=None)
    def test_expand_is_pure_per_word(self, words, rules, variants, seed):
        """Same (word, spec) -> same expansion, in any processing order."""
        make = lambda: build(  # noqa: E731
            f"mangle(enum)?rules={','.join(sorted(rules))}"
            f"&variants={variants}&seed={seed}"
        )
        forward = {w: make().expand(w) for w in words}
        backward = {w: make().expand(w) for w in reversed(words)}
        assert forward == backward
        # and stable across repeated calls on one instance
        strategy = make()
        for w in words:
            assert strategy.expand(w) == forward[w]

    @given(word=st.text(alphabet="abc12", min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_stochastic_draws_come_from_named_substreams(self, word):
        """expand reproduces apply_rule on spawn_rng(seed, mangle/...)."""
        strategy = build("mangle(enum)?rules=append_digits,leet&variants=2&seed=5")
        rng = spawn_rng(5, f"mangle/append_digits/{word}")
        expected_stochastic = [
            apply_rule("append_digits", word, rng) for _ in range(2)
        ]
        assert strategy.expand(word) == [
            word,
            *expected_stochastic,
            apply_rule("leet", word),
        ]

    def test_different_seeds_differ(self):
        a = build("mangle(enum)?rules=append_digits&variants=4&seed=1")
        b = build("mangle(enum)?rules=append_digits&variants=4&seed=2")
        assert a.expand("monkey") != b.expand("monkey")

    def test_apply_rule_needs_rng_for_stochastic(self):
        with pytest.raises(ValueError, match="rng"):
            apply_rule(next(iter(STOCHASTIC_RULES)), "word")
        with pytest.raises(KeyError):
            apply_rule("no_such_rule", "word", np.random.default_rng(0))


class TestSpecCanonicalization:
    def test_rules_are_a_sorted_set(self):
        a = build("mangle(enum)?rules=leet,capitalize,leet")
        b = build("mangle(enum)?rules=capitalize,leet")
        assert a.describe() == b.describe()
        assert a.describe() == "mangle(enum)?rules=capitalize,leet"

    def test_describe_round_trips(self):
        spec = "mangle(enum?batch=8)?rules=append_year,leet&seed=3&variants=2"
        strategy = build(spec)
        assert parse_spec(strategy.describe()).canonical() == strategy.describe()
        assert build(strategy.describe()).describe() == strategy.describe()

    def test_unknown_rule_rejected(self):
        with pytest.raises(SpecError, match="unknown mangling rule"):
            build("mangle(enum)?rules=sparkle")

    def test_mangle_requires_inner(self):
        with pytest.raises(SpecError, match="wraps another spec"):
            build("mangle?rules=leet")

    def test_wrapper_name_and_replayability(self):
        strategy = build("mangle(enum)?rules=leet")
        assert strategy.name == "Enum+Mangle"
        assert strategy.replayable


class TestStreamDeterminism:
    SPEC = "mangle(enum?batch=16)?rules=capitalize,append_digits&variants=2&seed=3"
    BUDGETS = [80, 320]

    @staticmethod
    def _test_set():
        base = [enum_password(n) for n in range(60)]
        return {w.capitalize() for w in base} | {w + "77" for w in base}

    @classmethod
    def _run(cls, workers, schedule, executor, chunk_size=None):
        engine = ParallelAttackEngine(
            cls._test_set(),
            cls.BUDGETS,
            workers=workers,
            schedule=schedule,
            executor=executor,
            chunk_size=chunk_size,
        )
        report = engine.run(StrategySource(cls.SPEC), seed=11)
        return (rows_of(report), report.matched_samples, report.non_matched_samples)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("schedule", ["static", "elastic"])
    def test_repeat_runs_bit_identical(self, workers, schedule):
        assert self._run(workers, schedule, LocalExecutor()) == self._run(
            workers, schedule, LocalExecutor()
        )

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("schedule", ["static", "elastic"])
    def test_processpool_matches_local(self, workers, schedule):
        assert self._run(workers, schedule, ProcessPoolExecutor()) == self._run(
            workers, schedule, LocalExecutor()
        )

    @given(chunk_size=st.sampled_from([8, 16, 32, 64, 128]))
    @settings(max_examples=5, deadline=None)
    def test_elastic_chunk_size_is_invisible(self, chunk_size):
        """Chunk boundaries never leak into the mangled stream."""
        baseline = self._run(2, "elastic", LocalExecutor())
        assert self._run(2, "elastic", LocalExecutor(), chunk_size) == baseline

    def test_serial_stream_is_the_expansion_of_the_inner_stream(self):
        """The wrapper emits exactly concat(expand(w) for inner words)."""
        strategy = build(self.SPEC)
        raw = take(build("enum?batch=16"), 200, np.random.default_rng(0))
        expected = [v for w in raw for v in strategy.expand(w)][:400]
        assert take(build(self.SPEC), 400, np.random.default_rng(0)) == expected


class TestWrapperOfBank:
    def test_mangle_of_bank_equals_mangle_of_live(self, tmp_path, corpus):
        """Banked inner -> identical mangled stream (replayable inner)."""
        # bank twice the attack budget so the replayed inner never dries
        bank = build_bank(
            build("markov:3?batch=32", corpus=corpus[:1500]),
            800,
            tmp_path / "markov.bank",
            seed=0,
            encoder=PasswordEncoder(compact_alphabet()),
        )
        live_spec = "mangle(markov:3?batch=32)?rules=leet,append_year&seed=9"
        bank_spec = f"mangle(bank:{bank.path})?rules=leet,append_year&seed=9"
        live = take(
            build(live_spec, corpus=corpus[:1500]), 600, np.random.default_rng(0)
        )
        replayed = take(build(bank_spec), 600, np.random.default_rng(0))
        assert replayed == live

    def test_banking_the_mangled_stream_round_trips(self, tmp_path, corpus):
        """The wrapper itself is bankable when its inner is replayable."""
        # length-preserving, compact-alphabet-safe rules: the mangled
        # stream must stay representable in the bank's packed key space
        spec = "mangle(markov:3?batch=32)?rules=leet,reverse&seed=2"
        bank = build_bank(
            build(spec, corpus=corpus[:1500]),
            500,
            tmp_path / "mangled.bank",
            seed=0,
            encoder=PasswordEncoder(compact_alphabet()),
        )
        assert take(build(f"bank:{bank.path}"), 500, np.random.default_rng(0)) == take(
            build(spec, corpus=corpus[:1500]), 500, np.random.default_rng(0)
        )

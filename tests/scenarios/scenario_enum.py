"""Deterministic enumerator strategies for the scenario test suite.

Two registry-buildable families back the policy/mangle property tests.
The suite's ``conftest.py`` imports this module once per session, which
registers the families, so spec strings cross the process-pool fork
boundary exactly like real strategies.  Family names are distinct from
the runtime suite's (``sequence`` et al.) because the registry rejects
re-registration.

* ``enum`` -- a position-deterministic enumerator over a fixed
  mixed-class vocabulary: guess ``n`` is ``VOCAB[n % V]`` suffixed with
  ``n`` and clipped to the codec length.  The stream covers every
  character class and a range of lengths, never consults the RNG, and is
  identical under static/elastic schedules and any executor -- the clean
  substrate on which the wrapper properties are provable.
* ``encodedenum`` -- the same guess sequence delivered as encoded
  batches (``index_matrix`` + codec, no materialized strings), driving
  the vectorized policy mask path instead of the string fallback.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.data.alphabet import default_alphabet
from repro.data.encoding import PasswordEncoder
from repro.strategies.base import GuessBatch, GuessingStrategy
from repro.strategies.registry import ParamReader, register

#: Mixed-class vocabulary: lengths 1..8, all four character classes,
#: denylist-friendly stems.  Alphabet-safe under ``default_alphabet``.
VOCAB = (
    "a",
    "ab",
    "Pass",
    "wordy",
    "DRAGON",
    "monkey",
    "12345",
    "s3cret!",
    "X9$kQ",
    "Abc123",
)


def enum_password(n: int, max_length: int = 10) -> str:
    """The ``enum`` family's guess ``n`` (pure function of position)."""
    word = VOCAB[n % len(VOCAB)] + str(n)
    return word[:max_length]


class EnumStrategy(GuessingStrategy):
    """Position-deterministic mixed-class enumerator (string batches)."""

    name = "Enum"
    replayable = True

    def __init__(self, batch: int = 32, spec: str = "enum") -> None:
        super().__init__(spec=spec)
        self._batch = int(batch)
        self._position = 0
        self._encoder = PasswordEncoder(default_alphabet())

    def _emit(self, count: int) -> List[str]:
        start = self._position
        self._position += count
        return [
            enum_password(n, self._encoder.max_length)
            for n in range(start, start + count)
        ]

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        while True:
            count = self.context.next_count(self._batch)
            if count < 1:
                return
            yield GuessBatch(self._emit(count))


class EncodedEnumStrategy(EnumStrategy):
    """The same sequence as encoded index-matrix batches."""

    name = "EncodedEnum"

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        while True:
            count = self.context.next_count(self._batch)
            if count < 1:
                return
            matrix = self._encoder.indices_from_strings(self._emit(count))
            yield GuessBatch(None, index_matrix=matrix, codec=self._encoder)


@register(
    "enum",
    "test-only: mixed-class position-deterministic enumerator",
    bankable="yes: pure function of position",
)
def _build_enum(spec, resources) -> EnumStrategy:
    """Build an ``enum[?batch=]`` spec."""
    reader = ParamReader(spec)
    batch = reader.take("batch", 32, int)
    reader.finish()
    return EnumStrategy(batch=batch, spec=reader.canonical())


@register(
    "encodedenum",
    "test-only: the enum stream as encoded index-matrix batches",
    bankable="yes: pure function of position",
)
def _build_encodedenum(spec, resources) -> EncodedEnumStrategy:
    """Build an ``encodedenum[?batch=]`` spec."""
    reader = ParamReader(spec)
    batch = reader.take("batch", 32, int)
    reader.finish()
    return EncodedEnumStrategy(batch=batch, spec=reader.canonical())

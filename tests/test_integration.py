"""End-to-end integration tests over the session-trained model.

These exercise the complete pipeline -- data synthesis, training, every
sampling strategy, latent operations and reporting -- at tiny scale, and
check the structural invariants that must hold at any scale.
"""

import numpy as np

from repro import (
    ConditionalGuesser,
    DynamicSampler,
    DynamicSamplingConfig,
    GaussianSmoother,
    GuessingAttack,
    StaticSampler,
    StepPenalization,
    interpolate,
)
from repro.baselines import MarkovModel, PCFGModel
from repro.eval.metrics import plausibility_rate
from repro.flows.priors import StandardNormalPrior


class TestFullPipeline:
    def test_training_reduced_nll(self, trained_model):
        history = trained_model.history
        assert history.nll[-1] < history.nll[0] - 1.0

    def test_flow_exactly_invertible_on_real_passwords(self, trained_model, corpus):
        features = trained_model.encoder.encode_batch(corpus[:64])
        assert trained_model.flow.check_invertibility(features, atol=1e-6) < 1e-6

    def test_all_samplers_produce_consistent_reports(self, trained_model, trained_dataset):
        budgets = [256, 1024]
        test_set = trained_dataset.test_set
        config = DynamicSamplingConfig(
            alpha=1, sigma=0.12, phi=StepPenalization(2), batch_size=256
        )
        reports = [
            StaticSampler(trained_model, batch_size=256).attack(
                test_set, budgets, np.random.default_rng(0)
            ),
            DynamicSampler(trained_model, config).attack(
                test_set, budgets, np.random.default_rng(1)
            ),
            DynamicSampler(
                trained_model, config, smoother=GaussianSmoother(trained_model.encoder)
            ).attack(test_set, budgets, np.random.default_rng(2)),
        ]
        for report in reports:
            assert [r.guesses for r in report.rows] == budgets
            for row in report.rows:
                assert 0 <= row.matched <= len(test_set)
                assert 0 < row.unique <= row.guesses
            uniques = [r.unique for r in report.rows]
            assert uniques == sorted(uniques)

    def test_generated_passwords_are_mostly_plausible(self, trained_model):
        prior = StandardNormalPrior(10, sigma=0.7)
        samples = [
            s
            for s in trained_model.sample_passwords(400, rng=np.random.default_rng(3), prior=prior)
            if s
        ]
        # even a tiny model should put most mass on human-like shapes
        assert plausibility_rate(samples) > 0.5

    def test_interpolation_connects_endpoints(self, trained_model):
        path = interpolate(trained_model, "love12", "123456", steps=8)
        assert path[0] == "love12" and path[-1] == "123456"

    def test_conditional_guessing_integrates(self, trained_model):
        guesser = ConditionalGuesser(trained_model, population=32)
        guesses = guesser.guess("love*", rounds=3, top_k=5, rng=np.random.default_rng(4))
        assert all(g.startswith("love") and len(g) == 5 for g in guesses)

    def test_baselines_run_through_same_attack(self, corpus, trained_dataset):
        attack = GuessingAttack(trained_dataset.test_set, [512], batch_size=256)
        markov_report = attack.run(
            MarkovModel(order=2).fit(corpus[:1500]), np.random.default_rng(5), "markov"
        )
        pcfg_report = attack.run(
            PCFGModel().fit(corpus[:1500]), np.random.default_rng(6), "pcfg"
        )
        assert markov_report.final().guesses == 512
        assert pcfg_report.final().guesses == 512

    def test_checkpoint_roundtrip_preserves_attack_behaviour(
        self, trained_model, trained_dataset, tmp_path
    ):
        from repro.core.model import PassFlow

        path = trained_model.save(tmp_path / "model.npz")
        restored = PassFlow.load(path)
        budgets = [256]
        a = StaticSampler(trained_model, batch_size=128).attack(
            trained_dataset.test_set, budgets, np.random.default_rng(7)
        )
        b = StaticSampler(restored, batch_size=128).attack(
            trained_dataset.test_set, budgets, np.random.default_rng(7)
        )
        assert a.final().unique == b.final().unique
        assert a.final().matched == b.final().matched

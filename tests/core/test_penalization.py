"""phi functions (Sec. IV-B and future-work variants)."""

import numpy as np
import pytest

from repro.core.penalization import (
    ExponentialDecayPenalization,
    LinearDecayPenalization,
    NoPenalization,
    StepPenalization,
)


class TestStep:
    def test_one_below_gamma_zero_after(self):
        phi = StepPenalization(gamma=3)
        assert np.allclose(phi(np.array([0, 2, 3, 10])), [1, 1, 0, 0])

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            StepPenalization(0)

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            StepPenalization(2)(np.array([-1]))


class TestNoPenalization:
    def test_always_one(self):
        phi = NoPenalization()
        assert np.allclose(phi(np.array([0, 5, 1000])), 1.0)


class TestLinearDecay:
    def test_decays_to_zero_at_horizon(self):
        phi = LinearDecayPenalization(horizon=4)
        assert np.allclose(phi(np.array([0, 1, 2, 4, 8])), [1.0, 0.75, 0.5, 0.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearDecayPenalization(0)


class TestExponentialDecay:
    def test_halves_each_use(self):
        phi = ExponentialDecayPenalization(decay=0.5)
        assert np.allclose(phi(np.array([0, 1, 2])), [1.0, 0.5, 0.25])

    def test_never_exactly_zero(self):
        phi = ExponentialDecayPenalization(decay=0.9)
        assert np.all(phi(np.array([100])) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecayPenalization(decay=1.0)
        with pytest.raises(ValueError):
            ExponentialDecayPenalization(decay=0.0)


class TestReprs:
    def test_reprs_identify_params(self):
        assert "3" in repr(StepPenalization(3))
        assert "5" in repr(LinearDecayPenalization(5))
        assert "0.5" in repr(ExponentialDecayPenalization(0.5))

"""fit() options: best-epoch restoration, validation tracking, divergence."""

import numpy as np
import pytest

from repro.core.model import PassFlow, PassFlowConfig, TrainingHistory
from repro.data.dataset import PasswordDataset


def make_model(alphabet, seed=21):
    config = PassFlowConfig.tiny(seed=seed)
    config.alphabet_chars = alphabet.chars
    return PassFlow(config)


class TestKeepBest:
    def test_restores_lowest_nll_weights(self, alphabet, corpus):
        model = make_model(alphabet)
        dataset = PasswordDataset(corpus[:400], [], model.encoder)
        model.fit(dataset, epochs=5, keep_best=True)
        # after restore, evaluating train NLL should be close to the best
        # epoch's recorded value, not necessarily the last one's
        features = model.encoder.encode_batch(corpus[:400])
        final_nll = -float(np.mean(model.flow.log_prob(features)))
        best_recorded = min(model.history.nll)
        assert final_nll <= best_recorded + 1.0

    def test_validation_series_tracked(self, alphabet, corpus):
        model = make_model(alphabet, seed=22)
        dataset = PasswordDataset(corpus[:400], [], model.encoder)
        model.fit(dataset, epochs=3, validation=corpus[400:600])
        assert len(model.history.val_nll) == 3
        assert all(np.isfinite(v) for v in model.history.val_nll)

    def test_best_epoch_prefers_validation(self):
        history = TrainingHistory(nll=[3.0, 1.0, 2.0], val_nll=[5.0, 4.0, 3.5])
        assert history.best_epoch == 2  # from val series, not train

    def test_divergence_raises(self, alphabet, corpus):
        model = make_model(alphabet, seed=23)
        model.config.learning_rate = 1e9  # guaranteed explosion
        dataset = PasswordDataset(corpus[:300], [], model.encoder)
        with pytest.raises(FloatingPointError):
            model.fit(dataset, epochs=3)

"""Latent interpolation (Algorithm 2)."""

import pytest

from repro.core.interpolation import interpolate, interpolation_grid


class TestInterpolate:
    def test_step_count(self, trained_model):
        path = interpolate(trained_model, "love12", "123456", steps=5)
        assert len(path) == 6

    def test_endpoints_decode_to_inputs(self, trained_model):
        path = interpolate(trained_model, "love12", "123456", steps=4)
        assert path[0] == "love12"
        assert path[-1] == "123456"

    def test_exclude_endpoints(self, trained_model):
        path = interpolate(trained_model, "love12", "123456", steps=4, include_endpoints=False)
        assert len(path) == 3

    def test_single_step(self, trained_model):
        path = interpolate(trained_model, "aa", "bb", steps=1)
        assert len(path) == 2

    def test_invalid_steps(self, trained_model):
        with pytest.raises(ValueError):
            interpolate(trained_model, "aa", "bb", steps=0)

    def test_same_password_constant_path(self, trained_model):
        path = interpolate(trained_model, "love12", "love12", steps=3)
        assert all(p == "love12" for p in path)

    def test_all_outputs_decodable_strings(self, trained_model):
        path = interpolate(trained_model, "maria99", "qwerty", steps=8)
        assert all(isinstance(p, str) and len(p) <= 10 for p in path)


class TestGrid:
    def test_pairs(self, trained_model):
        grid = interpolation_grid(trained_model, ["aa", "bb", "cc"], steps=2)
        assert len(grid) == 2
        assert all(len(path) == 3 for path in grid)

    def test_needs_two_anchors(self, trained_model):
        with pytest.raises(ValueError):
            interpolation_grid(trained_model, ["aa"])

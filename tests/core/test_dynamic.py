"""Dynamic Sampling with Penalization (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.dynamic import (
    PAPER_SCHEDULE,
    DynamicSampler,
    DynamicSamplingConfig,
    paper_schedule,
)
from repro.core.penalization import NoPenalization, StepPenalization
from repro.core.smoothing import GaussianSmoother
from repro.flows.priors import GaussianMixturePrior


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicSamplingConfig(alpha=-1)
        with pytest.raises(ValueError):
            DynamicSamplingConfig(sigma=0.0)
        with pytest.raises(ValueError):
            DynamicSamplingConfig(batch_size=0)
        with pytest.raises(ValueError):
            DynamicSamplingConfig(max_components=0)


class TestPaperSchedule:
    def test_table1_values(self):
        assert PAPER_SCHEDULE[10**4] == {"alpha": 1, "sigma": 0.12, "gamma": 2}
        assert PAPER_SCHEDULE[10**8] == {"alpha": 50, "sigma": 0.15, "gamma": 10}

    def test_exact_budget(self):
        config = paper_schedule(10**7)
        assert config.alpha == 50 and config.sigma == 0.12
        assert isinstance(config.phi, StepPenalization) and config.phi.gamma == 10

    def test_intermediate_budget_uses_lower_bucket(self):
        assert paper_schedule(5 * 10**6).alpha == 5

    def test_small_budget_uses_smallest_bucket(self):
        assert paper_schedule(100).alpha == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            paper_schedule(0)


class TestMixtureConstruction:
    def _sampler(self, trained_model, alpha=1, phi=None):
        config = DynamicSamplingConfig(
            alpha=alpha, sigma=0.1, phi=phi or StepPenalization(2), batch_size=64
        )
        return DynamicSampler(trained_model, config)

    def test_no_mixture_before_alpha(self, trained_model):
        sampler = self._sampler(trained_model, alpha=2)
        sampler.matched_latents = [np.zeros(10), np.ones(10)]
        sampler.usage_counts = [0, 0]
        assert sampler._mixture_prior() is None  # len == alpha, needs >

    def test_mixture_after_alpha(self, trained_model):
        sampler = self._sampler(trained_model, alpha=1)
        sampler.matched_latents = [np.zeros(10), np.ones(10)]
        sampler.usage_counts = [0, 0]
        prior = sampler._mixture_prior()
        assert isinstance(prior, GaussianMixturePrior)
        assert prior.num_components == 2

    def test_fully_penalized_falls_back(self, trained_model):
        sampler = self._sampler(trained_model, alpha=0)
        sampler.matched_latents = [np.zeros(10)]
        sampler.usage_counts = [99]  # beyond gamma=2
        assert sampler._mixture_prior() is None

    def test_usage_counting(self, trained_model):
        sampler = self._sampler(trained_model, alpha=0)
        sampler.matched_latents = [np.zeros(10), np.ones(10)]
        sampler.usage_counts = [0, 5]  # second already penalized out
        prior = sampler._mixture_prior()
        assert prior.num_components == 2  # built over window, weight 0 for idx 1
        sampler._note_usage()
        assert sampler.usage_counts == [1, 5]  # only active component charged

    def test_max_components_window(self, trained_model):
        config = DynamicSamplingConfig(
            alpha=0, sigma=0.1, phi=NoPenalization(), batch_size=8, max_components=3
        )
        sampler = DynamicSampler(trained_model, config)
        sampler.matched_latents = [np.full(10, float(i)) for i in range(10)]
        sampler.usage_counts = [0] * 10
        prior = sampler._mixture_prior()
        assert prior.num_components == 3
        assert np.allclose(prior.means[0], 7.0)  # most recent window


class TestAttack:
    def test_attack_produces_report(self, trained_model, trained_dataset):
        config = DynamicSamplingConfig(alpha=1, sigma=0.12, batch_size=128)
        sampler = DynamicSampler(trained_model, config)
        report = sampler.attack(
            trained_dataset.test_set, [128, 512], np.random.default_rng(0)
        )
        assert [r.guesses for r in report.rows] == [128, 512]
        assert report.method == "PassFlow-Dynamic"

    def test_matches_recorded_in_latent_memory(self, trained_model, trained_dataset):
        config = DynamicSamplingConfig(alpha=1, sigma=0.12, batch_size=256)
        sampler = DynamicSampler(trained_model, config)
        report = sampler.attack(
            trained_dataset.test_set, [2048], np.random.default_rng(3)
        )
        assert len(sampler.matched_latents) == report.final().matched
        assert len(sampler.usage_counts) == len(sampler.matched_latents)

    def test_attack_with_smoother_runs(self, trained_model, trained_dataset):
        config = DynamicSamplingConfig(alpha=1, sigma=0.12, batch_size=128)
        sampler = DynamicSampler(
            trained_model, config, smoother=GaussianSmoother(trained_model.encoder)
        )
        report = sampler.attack(trained_dataset.test_set, [512], np.random.default_rng(1))
        assert report.final().guesses == 512

    def test_rows_monotone(self, trained_model, trained_dataset):
        config = DynamicSamplingConfig(alpha=1, sigma=0.15, batch_size=128)
        sampler = DynamicSampler(trained_model, config)
        report = sampler.attack(
            trained_dataset.test_set, [128, 256, 512], np.random.default_rng(2)
        )
        uniques = [r.unique for r in report.rows]
        matches = [r.matched for r in report.rows]
        assert uniques == sorted(uniques)
        assert matches == sorted(matches)

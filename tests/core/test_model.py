"""PassFlow model: configuration, training, latent API, checkpointing."""

import numpy as np
import pytest

from repro.core.model import PassFlow, PassFlowConfig, TrainingHistory
from repro.data.alphabet import compact_alphabet
from repro.data.dataset import PasswordDataset


class TestConfig:
    def test_paper_defaults(self):
        config = PassFlowConfig.paper()
        assert config.num_couplings == 18
        assert config.hidden == 256
        assert config.batch_size == 512
        assert config.epochs == 400
        assert config.learning_rate == 1e-3
        assert config.mask_strategy == "char-run-1"
        assert config.max_length == 10

    def test_presets_shrink(self):
        assert PassFlowConfig.tiny().hidden < PassFlowConfig.small().hidden < 256


class TestConstruction:
    def test_builds_correct_coupling_count(self):
        model = PassFlow(PassFlowConfig.tiny())
        from repro.flows.coupling import AffineCoupling

        couplings = [b for b in model.flow.bijectors if isinstance(b, AffineCoupling)]
        assert len(couplings) == PassFlowConfig.tiny().num_couplings

    def test_actnorm_optional(self):
        config = PassFlowConfig.tiny()
        config.use_actnorm = True
        model = PassFlow(config)
        from repro.flows.actnorm import ActNorm

        assert any(isinstance(b, ActNorm) for b in model.flow.bijectors)

    def test_custom_alphabet(self):
        config = PassFlowConfig.tiny()
        config.alphabet_chars = compact_alphabet().chars
        model = PassFlow(config)
        assert len(model.alphabet) == len(compact_alphabet())


class TestTraining:
    def test_fit_decreases_nll(self, corpus, alphabet):
        config = PassFlowConfig.tiny(seed=3)
        config.alphabet_chars = alphabet.chars
        model = PassFlow(config)
        history = model.fit(corpus[:400], epochs=4)
        assert history.nll[-1] < history.nll[0]

    def test_fit_accepts_raw_list(self, alphabet):
        config = PassFlowConfig.tiny()
        config.alphabet_chars = alphabet.chars
        model = PassFlow(config)
        history = model.fit(["love12", "love34"] * 80, epochs=1)
        assert len(history.nll) == 1

    def test_history_best_epoch(self):
        history = TrainingHistory(nll=[5.0, 2.0, 3.0])
        assert history.best_epoch == 1

    def test_history_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().best_epoch


class TestLatentAPI:
    def test_encode_decode_roundtrip(self, trained_model):
        passwords = ["love12", "maria2", "qwerty"]
        latents = trained_model.encode_passwords(passwords)
        assert latents.shape == (3, 10)
        assert trained_model.decode_latents(latents) == passwords

    def test_log_prob_prefers_training_distribution(self, trained_model, corpus):
        real = list(dict.fromkeys(corpus))[:50]
        rng = np.random.default_rng(0)
        chars = trained_model.alphabet.chars
        random_strings = [
            "".join(chars[i] for i in rng.integers(0, len(chars), size=8)) for _ in range(50)
        ]
        real_lp = trained_model.log_prob(real).mean()
        random_lp = trained_model.log_prob(random_strings).mean()
        assert real_lp > random_lp + 1.0

    def test_sample_passwords_count_and_type(self, trained_model):
        samples = trained_model.sample_passwords(25, rng=np.random.default_rng(0))
        assert len(samples) == 25
        assert all(isinstance(s, str) for s in samples)

    def test_samples_within_length_budget(self, trained_model):
        samples = trained_model.sample_passwords(50, rng=np.random.default_rng(1))
        assert all(len(s) <= 10 for s in samples)

    def test_decode_features_path(self, trained_model):
        latents = trained_model.sample_latents(5, rng=np.random.default_rng(2))
        features = trained_model.decode_latents_to_features(latents)
        assert features.shape == (5, 10)
        decoded = trained_model.encoder.decode_batch(features)
        assert decoded == trained_model.decode_latents(latents)


class TestCheckpointing:
    def test_save_load_roundtrip(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        restored = PassFlow.load(path)
        passwords = ["love12", "magic7"]
        assert np.allclose(
            restored.encode_passwords(passwords),
            trained_model.encode_passwords(passwords),
        )
        assert restored.history.nll == trained_model.history.nll

    def test_loaded_model_config_matches(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        restored = PassFlow.load(path)
        assert restored.config == trained_model.config

    def test_loaded_model_samples(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        restored = PassFlow.load(path)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        assert restored.sample_passwords(10, rng=rng_a) == trained_model.sample_passwords(
            10, rng=rng_b
        )

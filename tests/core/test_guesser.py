"""Guess accounting and the generic attack facade."""

import numpy as np
import pytest

from repro.core.guesser import BudgetRow, GuessAccounting, GuessingAttack, GuessingReport


class TestAccounting:
    def test_budgets_must_be_sorted(self):
        with pytest.raises(ValueError):
            GuessAccounting({"a"}, [100, 50])

    def test_budgets_must_be_distinct(self):
        with pytest.raises(ValueError):
            GuessAccounting({"a"}, [50, 50])

    def test_budgets_required(self):
        with pytest.raises(ValueError):
            GuessAccounting({"a"}, [])

    def test_counts_unique_and_matched(self):
        acc = GuessAccounting({"hit1", "hit2"}, [6])
        acc.observe(["miss", "hit1", "miss", "hit1", "hit2", "other"])
        row = acc.rows[0]
        assert row.guesses == 6
        assert row.unique == 4  # miss, hit1, hit2, other
        assert row.matched == 2

    def test_observe_returns_new_match_indices(self):
        acc = GuessAccounting({"a", "b"}, [10])
        indices = acc.observe(["x", "a", "a", "b"])
        assert indices == [1, 3]

    def test_duplicate_match_not_recounted(self):
        acc = GuessAccounting({"a"}, [10])
        acc.observe(["a"])
        assert acc.observe(["a"]) == []
        assert len(acc.matched) == 1

    def test_checkpoints_cross_multiple_budgets(self):
        acc = GuessAccounting({"z"}, [2, 4])
        acc.observe(["a", "b", "c", "d", "e"])
        assert [r.guesses for r in acc.rows] == [2, 4]
        assert acc.done

    def test_stops_counting_after_final_budget(self):
        acc = GuessAccounting({"z"}, [3])
        acc.observe(["a", "b", "c", "d", "e"])
        assert acc.total == 3

    def test_remaining(self):
        acc = GuessAccounting({"z"}, [10])
        acc.observe(["a", "b"])
        assert acc.remaining == 8

    def test_match_percent(self):
        acc = GuessAccounting({"a", "b", "c", "d"}, [4])
        acc.observe(["a", "x", "y", "z"])
        assert acc.rows[0].match_percent == 25.0

    def test_samples_capped(self):
        acc = GuessAccounting(set(), [100], sample_cap=3)
        acc.observe([f"pw{i}" for i in range(50)])
        assert len(acc.non_matched_samples) == 3

    def test_report_structure(self):
        acc = GuessAccounting({"a"}, [2])
        acc.observe(["a", "b"])
        report = acc.report("TestMethod")
        assert report.method == "TestMethod"
        assert report.test_size == 1
        assert report.rows[0].matched == 1


class TestReport:
    def _report(self):
        return GuessingReport(
            method="m",
            test_size=10,
            rows=[BudgetRow(10, 8, 1, 10.0), BudgetRow(100, 70, 3, 30.0)],
        )

    def test_row_at(self):
        assert self._report().row_at(100).matched == 3

    def test_row_at_missing_raises(self):
        with pytest.raises(KeyError):
            self._report().row_at(55)

    def test_final(self):
        assert self._report().final().guesses == 100

    def test_final_empty_raises(self):
        with pytest.raises(ValueError):
            GuessingReport("m", 1).final()

    def test_budget_row_as_dict(self):
        row = BudgetRow(10, 8, 1, 10.0)
        assert row.as_dict()["unique"] == 8


class TestGuessingAttack:
    def test_runs_callable_generator(self):
        counter = {"n": 0}

        def generate(count, rng):
            start = counter["n"]
            counter["n"] += count
            return [f"pw{start + i}" for i in range(count)]

        attack = GuessingAttack({"pw5", "pw999"}, [10], batch_size=4)
        report = attack.run(generate, np.random.default_rng(0), method="counterfeit")
        assert report.rows[0].guesses == 10
        assert report.rows[0].matched == 1  # pw5 seen, pw999 not reached

    def test_runs_object_with_sample_passwords(self, trained_model):
        attack = GuessingAttack({"love12"}, [50], batch_size=25)
        report = attack.run(trained_model, np.random.default_rng(0))
        assert report.rows[0].guesses == 50

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            GuessingAttack(set(), [10], batch_size=0)

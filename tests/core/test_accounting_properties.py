"""Hypothesis property tests on guess accounting invariants.

These invariants must hold for any guess stream and any budget layout;
every table in the paper depends on them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.guesser import GuessAccounting

passwords = st.lists(
    st.text(alphabet="abc123", min_size=1, max_size=6), min_size=0, max_size=200
)
budget_layout = st.lists(
    st.integers(min_value=1, max_value=150), min_size=1, max_size=4, unique=True
).map(sorted)


@given(passwords, budget_layout)
@settings(max_examples=60, deadline=None)
def test_counters_are_consistent(stream, budgets):
    test_set = {"abc1", "ca", "123"}
    acc = GuessAccounting(test_set, budgets)
    acc.observe(stream)
    assert len(acc.unique) <= acc.total
    assert len(acc.matched) <= len(test_set)
    assert acc.matched <= acc.unique or not acc.matched  # matches are unique guesses
    assert acc.total <= budgets[-1]


@given(passwords, budget_layout)
@settings(max_examples=60, deadline=None)
def test_rows_are_monotone(stream, budgets):
    acc = GuessAccounting({"abc1", "ca"}, budgets)
    acc.observe(stream)
    uniques = [row.unique for row in acc.rows]
    matches = [row.matched for row in acc.rows]
    assert uniques == sorted(uniques)
    assert matches == sorted(matches)
    assert [row.guesses for row in acc.rows] == budgets[: len(acc.rows)]


@given(passwords)
@settings(max_examples=40, deadline=None)
def test_observation_order_does_not_change_totals(stream):
    budgets = [10**6]  # never exhausted: whole stream is observed
    forward = GuessAccounting({"abc1"}, budgets)
    forward.observe(stream)
    backward = GuessAccounting({"abc1"}, budgets)
    backward.observe(list(reversed(stream)))
    assert forward.total == backward.total
    assert forward.unique == backward.unique
    assert forward.matched == backward.matched


@given(passwords, st.integers(min_value=1, max_value=50))
@settings(max_examples=40, deadline=None)
def test_batched_equals_streamed(stream, batch_size):
    budgets = [10**6]
    streamed = GuessAccounting(set("abc"), budgets)
    streamed.observe(stream)
    batched = GuessAccounting(set("abc"), budgets)
    for start in range(0, len(stream), batch_size):
        batched.observe(stream[start : start + batch_size])
    assert streamed.total == batched.total
    assert streamed.unique == batched.unique
    assert streamed.matched == batched.matched


@given(passwords, budget_layout, st.integers(min_value=1, max_value=50))
@settings(max_examples=60, deadline=None)
def test_vectorized_equals_scalar(stream, budgets, batch_size):
    """The batch-vectorized path is item-for-item the per-password loop."""
    test_set = {"abc1", "ca", "123"}
    vectorized = GuessAccounting(set(test_set), budgets, sample_cap=4)
    scalar = GuessAccounting(set(test_set), budgets, sample_cap=4)
    for start in range(0, len(stream), batch_size):
        batch = stream[start : start + batch_size]
        assert vectorized.observe(batch) == scalar.observe_scalar(batch)
    assert vectorized.total == scalar.total
    assert vectorized.unique == scalar.unique
    assert vectorized.matched == scalar.matched
    assert vectorized.rows == scalar.rows
    assert vectorized.matched_samples == scalar.matched_samples
    assert vectorized.non_matched_samples == scalar.non_matched_samples


@given(passwords, passwords, budget_layout)
@settings(max_examples=40, deadline=None)
def test_merge_is_union(stream_a, stream_b, budgets):
    """Merged shard counters equal one accounting over both streams' sets."""
    test_set = {"abc1", "ca", "123"}
    shard_a = GuessAccounting(set(test_set), budgets)
    shard_b = GuessAccounting(set(test_set), budgets)
    shard_a.observe(stream_a)
    shard_b.observe(stream_b)
    observed_a, observed_b = shard_a.total, shard_b.total
    shard_a.merge(shard_b)
    assert shard_a.total == observed_a + observed_b
    reference = GuessAccounting(set(test_set), [10**6])
    reference.observe(stream_a[:observed_a])
    reference.observe(stream_b[:observed_b])
    assert shard_a.unique == reference.unique
    assert shard_a.matched == reference.matched

"""Password-strength estimation."""

import numpy as np
import pytest

from repro.core.strength import BAND_LABELS, StrengthEstimator


@pytest.fixture(scope="module")
def estimator(trained_model, corpus):
    return StrengthEstimator(trained_model, reference=corpus[:500])


class TestCalibration:
    def test_needs_enough_reference(self, trained_model):
        with pytest.raises(ValueError):
            StrengthEstimator(trained_model, reference=["a"] * 5)

    def test_uncalibrated_percentile_raises(self, trained_model):
        estimator = StrengthEstimator(trained_model)
        with pytest.raises(RuntimeError):
            estimator.percentile("love12")

    def test_calibrated_flag(self, trained_model, corpus):
        estimator = StrengthEstimator(trained_model)
        assert not estimator.calibrated
        estimator.calibrate(corpus[:100])
        assert estimator.calibrated


class TestScoring:
    def test_common_password_weaker_than_random(self, estimator, trained_model):
        rng = np.random.default_rng(0)
        chars = trained_model.alphabet.chars
        random_password = "".join(chars[i] for i in rng.integers(0, len(chars), size=9))
        assert estimator.percentile("love12") < estimator.percentile(random_password)

    def test_percentile_in_unit_interval(self, estimator, corpus):
        for password in corpus[:20]:
            assert 0.0 <= estimator.percentile(password) <= 1.0

    def test_score_bands(self, estimator, corpus):
        scores = {estimator.score(p) for p in corpus[:50]}
        assert scores <= set(range(5))

    def test_label_maps_score(self, estimator):
        label = estimator.label("love12")
        assert label in BAND_LABELS

    def test_report_rows(self, estimator):
        rows = estimator.report(["love12", "zq8kfp2x"])
        assert len(rows) == 2
        assert {"password", "log_prob", "percentile", "band"} <= set(rows[0])


class TestGuessRank:
    def test_validation(self, estimator):
        with pytest.raises(ValueError):
            estimator.guess_rank("x", sample_size=0)

    def test_rank_at_least_one(self, estimator):
        rank = estimator.guess_rank("love12", sample_size=256, rng=np.random.default_rng(1))
        assert rank >= 1.0 and np.isfinite(rank)

    def test_weak_password_lower_rank(self, estimator, trained_model):
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        weak = estimator.guess_rank("love12", sample_size=512, rng=rng_a)
        chars = trained_model.alphabet.chars
        rand_rng = np.random.default_rng(3)
        strong_pw = "".join(chars[i] for i in rand_rng.integers(0, len(chars), size=10))
        strong = estimator.guess_rank(strong_pw, sample_size=512, rng=rng_b)
        assert weak < strong, f"weak={weak} should rank far below strong={strong}"

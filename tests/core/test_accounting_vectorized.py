"""The vectorized/encoded accounting paths against the scalar reference.

Three contracts guard the parallel runtime's foundation:

* ``observe`` (batch-vectorized) is item-for-item equivalent to
  ``observe_scalar`` (the seed per-password loop),
* ``observe_encoded`` (interned uint64 ids) is equivalent to ``observe``
  over the decoded strings,
* ``merge`` and ``snapshot``/``from_snapshot`` preserve counters under
  overlapping shards and pickling.
"""

import pickle
import random

import numpy as np
import pytest

from repro.core.guesser import AccountingSnapshot, GuessAccounting
from repro.data.alphabet import compact_alphabet
from repro.data.encoding import PasswordEncoder

POOL = [f"pw{i}" for i in range(400)] + ["", "hit1", "hit2", "hit3"]


def random_case(rng):
    test_set = set(rng.sample(POOL, rng.randint(0, 30)))
    budgets = sorted(rng.sample(range(1, 400), rng.randint(1, 4)))
    stream = [rng.choice(POOL) for _ in range(rng.randint(0, 450))]
    return test_set, budgets, stream


def drive(accounting, stream, rng, method):
    indices, start = [], 0
    observe = getattr(accounting, method)
    while start < len(stream):
        size = rng.randint(1, 64)
        indices.extend(
            i + start for i in observe(stream[start : start + size])
        )
        start += size
    return indices


def state_of(accounting):
    return {
        "total": accounting.total,
        "unique": set(accounting.unique),
        "matched": set(accounting.matched),
        "rows": [row.as_dict() for row in accounting.rows],
        "matched_samples": list(accounting.matched_samples),
        "non_matched_samples": list(accounting.non_matched_samples),
    }


class TestScalarVectorizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            test_set, budgets, stream = random_case(rng)
            vectorized = GuessAccounting(set(test_set), budgets, sample_cap=5)
            scalar = GuessAccounting(set(test_set), budgets, sample_cap=5)
            batch_rng = random.Random(seed + 1)
            iv = drive(vectorized, stream, batch_rng, "observe")
            batch_rng = random.Random(seed + 1)
            isc = drive(scalar, stream, batch_rng, "observe_scalar")
            assert iv == isc
            assert state_of(vectorized) == state_of(scalar)

    def test_deltas_match_scalar(self):
        rng = random.Random(3)
        test_set, budgets, stream = random_case(rng)
        a = GuessAccounting(set(test_set), budgets, track_deltas=True)
        b = GuessAccounting(set(test_set), budgets, track_deltas=True)
        a.observe(stream)
        b.observe_scalar(stream)
        assert len(a.deltas) == len(b.deltas) == len(a.rows)
        for da, db in zip(a.deltas, b.deltas):
            assert sorted(da.new_unique) == sorted(db.new_unique)
            assert sorted(da.new_matched) == sorted(db.new_matched)

    def test_delta_union_reconstructs_rows(self):
        acc = GuessAccounting({"hit1", "hit2"}, [50, 120, 300], track_deltas=True)
        acc.observe([random.Random(9).choice(POOL) for _ in range(400)])
        unique, matched = set(), set()
        for row, delta in zip(acc.rows, acc.deltas):
            unique.update(delta.new_unique)
            matched.update(delta.new_matched)
            assert row.unique == len(unique)
            assert row.matched == len(matched)

    def test_mid_batch_checkpoint_split(self):
        acc = GuessAccounting({"c"}, [2, 5])
        acc.observe(["a", "b", "c", "c", "d", "e", "f"])
        assert [r.guesses for r in acc.rows] == [2, 5]
        assert acc.rows[0].unique == 2
        assert acc.rows[1].matched == 1
        assert acc.total == 5  # stops at the final budget mid-batch


class TestEncodedEquivalence:
    @pytest.fixture(scope="class")
    def codec(self):
        return PasswordEncoder(compact_alphabet())

    def test_random_index_streams(self, codec):
        rng = np.random.default_rng(5)
        for _ in range(12):
            n = int(rng.integers(50, 1200))
            index_matrix = rng.integers(0, codec.vocab_size, size=(n, 10))
            index_matrix[rng.integers(0, n, size=2)] = 0  # empty passwords
            strings = codec.strings_from_indices(index_matrix)
            test_set = set(
                rng.choice([s for s in strings if s], size=15, replace=False).tolist()
            )
            budgets = sorted(set(rng.integers(1, n + 40, size=3).tolist()))
            encoded = GuessAccounting(set(test_set), budgets, sample_cap=5)
            stringy = GuessAccounting(set(test_set), budgets, sample_cap=5)
            got, want, start = [], [], 0
            while start < n:
                size = int(rng.integers(1, 257))
                got += [
                    i + start
                    for i in encoded.observe_encoded(
                        index_matrix[start : start + size], codec
                    )
                ]
                want += [
                    i + start
                    for i in stringy.observe(strings[start : start + size])
                ]
                start += size
            assert got == want
            assert encoded.matched == stringy.matched
            assert [r.as_dict() for r in encoded.rows] == [
                r.as_dict() for r in stringy.rows
            ]
            assert encoded.matched_samples == stringy.matched_samples
            assert encoded.non_matched_samples == stringy.non_matched_samples

    def test_unencodable_test_targets_are_skipped_not_fatal(self, codec):
        """Real test sets contain targets the codec cannot represent."""
        encodable = "love12"
        test_set = {
            encodable,
            "far-too-long-password",  # over max_length
            "has spaces!",  # out-of-alphabet characters
        }
        acc = GuessAccounting(set(test_set), [10])
        rows = np.stack([codec.to_indices(encodable), codec.to_indices("miss1")])
        matches = acc.observe_encoded(rows, codec)
        assert matches == [0]
        assert acc.matched == {encodable}
        # percent is still relative to the full test set
        assert acc.rows == [] and acc.test_set == test_set

    def test_mode_locking(self, codec):
        acc = GuessAccounting(set(), [10])
        acc.observe(["a"])
        with pytest.raises(ValueError):
            acc.observe_encoded(np.zeros((1, 10), dtype=np.int64), codec)
        acc2 = GuessAccounting(set(), [10])
        acc2.observe_encoded(np.zeros((1, 10), dtype=np.int64), codec)
        with pytest.raises(ValueError):
            acc2.observe(["a"])

    def test_encoded_delta_tracking_emits_keyed_deltas(self, codec):
        """track_deltas in encoded mode ships packed keys, not strings."""
        from repro.core.guesser import KeyedCheckpointDelta

        acc = GuessAccounting(set(), [2, 3], track_deltas=True)
        rows = np.stack([codec.to_indices(p) for p in ["aa", "ab", "aa"]])
        acc.observe_encoded(rows, codec)
        assert [type(d) for d in acc.deltas] == [KeyedCheckpointDelta] * 2
        assert sorted(acc.deltas[0].decode(codec).new_unique) == ["aa", "ab"]
        assert acc.deltas[1].decode(codec).new_unique == []

    def test_empty_batches_observe_nothing(self, codec):
        acc = GuessAccounting({"abc"}, [5])
        for empty in (np.empty((0,), dtype=np.int64), np.empty((0, 10), dtype=np.int64)):
            assert acc.observe_encoded(empty, codec) == []
        assert acc.total == 0
        stringy = GuessAccounting({"abc"}, [5])
        assert stringy.observe([]) == [] and stringy.total == 0


class TestMerge:
    def test_overlapping_shards(self):
        test_set = {"hit1", "hit2", "hit3"}
        shard_a = GuessAccounting(set(test_set), [100])
        shard_b = GuessAccounting(set(test_set), [100])
        shard_a.observe(["pw1", "pw2", "hit1", "pw3"])
        shard_b.observe(["pw2", "hit1", "hit2", "pw4"])
        shard_a.merge(shard_b)
        assert shard_a.total == 8  # totals add even for overlapping guesses
        assert shard_a.unique == {"pw1", "pw2", "pw3", "pw4", "hit1", "hit2"}
        assert shard_a.matched == {"hit1", "hit2"}

    def test_merge_emits_crossed_checkpoints(self):
        shard_a = GuessAccounting({"x"}, [6])
        shard_b = GuessAccounting({"x"}, [6])
        shard_a.observe(["a", "b", "c"])
        shard_b.observe(["c", "x", "d"])
        assert shard_a.rows == []
        shard_a.merge(shard_b)
        assert len(shard_a.rows) == 1
        row = shard_a.rows[0]
        assert (row.guesses, row.unique, row.matched) == (6, 5, 1)

    def test_merge_requires_same_budgets(self):
        with pytest.raises(ValueError):
            GuessAccounting(set(), [10]).merge(GuessAccounting(set(), [20]))

    def test_merge_rejects_mixed_modes(self):
        codec = PasswordEncoder(compact_alphabet())
        stringy = GuessAccounting(set(), [10])
        stringy.observe(["a"])
        encoded = GuessAccounting(set(), [10])
        encoded.observe_encoded(np.ones((1, 10), dtype=np.int64), codec)
        with pytest.raises(ValueError):
            stringy.merge(encoded)

    def test_merge_encoded_unique_union(self):
        codec = PasswordEncoder(compact_alphabet())
        rng = np.random.default_rng(0)
        rows_a = rng.integers(0, codec.vocab_size, size=(40, 10))
        rows_b = np.concatenate(
            [rows_a[:20], rng.integers(0, codec.vocab_size, size=(20, 10))]
        )
        a = GuessAccounting(set(), [100])
        b = GuessAccounting(set(), [100])
        reference = GuessAccounting(set(), [100])
        a.observe_encoded(rows_a, codec)
        b.observe_encoded(rows_b, codec)
        reference.observe_encoded(np.concatenate([rows_a, rows_b]), codec)
        a.merge(b)
        assert a.total == 80
        assert a._unique_count() == reference._unique_count()

    def test_sample_merge_caps_and_dedupes(self):
        a = GuessAccounting(set(), [100], sample_cap=3)
        b = GuessAccounting(set(), [100], sample_cap=3)
        a.observe(["s1", "s2"])
        b.observe(["s2", "s3", "s4", "s5"])
        a.merge(b)
        assert a.non_matched_samples == ["s1", "s2", "s3"]


class TestSnapshot:
    def test_round_trip_preserves_everything(self):
        test_set = {"hit1", "hit2"}
        acc = GuessAccounting(set(test_set), [5, 20], sample_cap=4, track_deltas=True)
        acc.observe(["a", "hit1", "b", "a", "c", "d", "hit2"])
        snapshot = pickle.loads(pickle.dumps(acc.snapshot()))
        assert isinstance(snapshot, AccountingSnapshot)
        restored = GuessAccounting.from_snapshot(snapshot, set(test_set))
        assert state_of(restored) == state_of(acc)
        assert restored.done == acc.done
        # the restored accounting keeps observing identically
        tail = ["e", "f", "hit2", "g"]
        acc.observe(tail)
        restored.observe(tail)
        assert state_of(restored) == state_of(acc)
        assert len(restored.deltas) == len(acc.deltas)

    def test_budget_validation_still_applies(self):
        with pytest.raises(ValueError):
            GuessAccounting(set(), [0, 10])

"""Batch-vectorized strength scoring: bitwise parity with the scalar path.

The property under test is the serving tier's foundation: for any mix of
passwords (encodable or not), any ``batch_size``, and any kernel backend,
``score_batch``/``log_prob_batch``/``percentile_batch`` return exactly --
bit for bit -- what a loop over the scalar methods returns, with defined
sentinels where the scalar path raises.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.strength import (
    EVAL_ROWS,
    UNSCORABLE_LABEL,
    UNSCORABLE_SCORE,
    StrengthEstimator,
)

BACKENDS = ["numpy", "reference"] + (["numba"] if kernels.numba_available() else [])

# mixes encodable corpus-alphabet passwords with out-of-alphabet and
# over-length junk the codec must sentinel out
password_strategy = st.one_of(
    st.text(alphabet="abcdefmno129", min_size=1, max_size=10),
    st.text(alphabet="ÅΩ光", min_size=1, max_size=4),
    st.text(alphabet="abc", min_size=11, max_size=16),
)


@pytest.fixture(scope="module")
def estimator(trained_model, corpus):
    est = StrengthEstimator(trained_model)
    est.calibrate(corpus[:400])
    return est


class TestBitwiseParity:
    @given(
        passwords=st.lists(password_strategy, min_size=1, max_size=12),
        batch_size=st.one_of(st.none(), st.integers(min_value=1, max_value=128)),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_log_prob_batch_matches_scalar_bitwise(
        self, estimator, passwords, batch_size
    ):
        batched = estimator.log_prob_batch(passwords, batch_size=batch_size)
        for value, password in zip(batched, passwords):
            if estimator.model.encoder.can_encode(password):
                assert value == estimator.log_prob(password)  # bitwise
            else:
                assert np.isnan(value)

    @given(passwords=st.lists(password_strategy, min_size=1, max_size=10))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_score_and_percentile_match_scalar_bitwise(self, estimator, passwords):
        scores = estimator.score_batch(passwords)
        percentiles = estimator.percentile_batch(passwords)
        for i, password in enumerate(passwords):
            if estimator.model.encoder.can_encode(password):
                assert scores[i] == estimator.score(password)
                assert percentiles[i] == estimator.percentile(password)
            else:
                assert scores[i] == UNSCORABLE_SCORE
                assert np.isnan(percentiles[i])

    def test_chunking_is_bit_invariant(self, estimator, corpus):
        passwords = corpus[:100]
        reference = estimator.log_prob_batch(passwords, batch_size=None)
        for batch_size in (1, 3, 7, 50, 64, 128, 4096):
            chunked = estimator.log_prob_batch(passwords, batch_size=batch_size)
            np.testing.assert_array_equal(chunked, reference)

    def test_position_and_neighbors_do_not_change_bits(self, estimator, corpus):
        target = corpus[0]
        alone = estimator.log_prob_batch([target])[0]
        rng = np.random.default_rng(5)
        for _ in range(4):
            neighbors = list(rng.choice(corpus[1:200], size=EVAL_ROWS - 1))
            position = int(rng.integers(0, EVAL_ROWS))
            batch = neighbors[:position] + [target] + neighbors[position:]
            assert estimator.log_prob_batch(batch)[position] == alone


class TestBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parity_holds_on_every_backend(self, estimator, corpus, backend):
        passwords = corpus[:20] + ["ÅΩ", "a" * 30]
        with kernels.use_backend(backend):
            batched = estimator.log_prob_batch(passwords)
            scores = estimator.score_batch(passwords)
            scalar = [
                estimator.log_prob(p)
                if estimator.model.encoder.can_encode(p)
                else None
                for p in passwords
            ]
        for i, expected in enumerate(scalar):
            if expected is None:
                assert np.isnan(batched[i]) and scores[i] == UNSCORABLE_SCORE
            else:
                assert batched[i] == expected

    def test_numba_skipped_when_unavailable(self):
        if not kernels.numba_available():
            assert "numba" not in BACKENDS


class TestSentinels:
    def test_all_unencodable_batch_is_all_sentinels(self, estimator):
        passwords = ["Ω" * 3, "x" * 40]
        assert np.isnan(estimator.log_prob_batch(passwords)).all()
        assert (estimator.score_batch(passwords) == UNSCORABLE_SCORE).all()
        assert estimator.labels_from_scores(
            estimator.score_batch(passwords)
        ) == [UNSCORABLE_LABEL, UNSCORABLE_LABEL]

    def test_empty_batch(self, estimator):
        assert estimator.log_prob_batch([]).shape == (0,)
        assert estimator.score_batch([]).shape == (0,)

    def test_report_marks_unscorable_rows(self, estimator):
        rows = estimator.report(["abc12", "Ω"])
        assert rows[0]["log_prob"] is not None and rows[0]["band"] != UNSCORABLE_LABEL
        assert rows[1]["log_prob"] is None and rows[1]["band"] == UNSCORABLE_LABEL

    def test_bad_batch_size_raises(self, estimator):
        with pytest.raises(ValueError):
            estimator.log_prob_batch(["abc"], batch_size=0)

    def test_scalar_path_still_raises_on_unencodable(self, estimator):
        with pytest.raises((KeyError, ValueError)):
            estimator.log_prob("Ω")


class TestCallCountSeam:
    """``batch_size`` is the flow-call budget: exactly ceil(N/batch) calls."""

    def count_calls(self, estimator, passwords, batch_size, monkeypatch):
        calls = []
        real = estimator.model.log_prob

        def counting(pwds):
            calls.append(len(pwds))
            return real(pwds)

        monkeypatch.setattr(estimator.model, "log_prob", counting)
        estimator.log_prob_batch(passwords, batch_size=batch_size)
        return calls

    @pytest.mark.parametrize("n, batch_size", [(1, 1), (5, 2), (7, 7), (10, 3), (64, 64)])
    def test_exactly_ceil_n_over_batch_calls(
        self, estimator, corpus, monkeypatch, n, batch_size
    ):
        calls = self.count_calls(estimator, corpus[:n], batch_size, monkeypatch)
        assert len(calls) == math.ceil(n / batch_size)
        # every call is the canonical padded shape
        assert all(size == EVAL_ROWS for size in calls)

    def test_unencodable_rows_cost_no_flow_calls(
        self, estimator, corpus, monkeypatch
    ):
        passwords = corpus[:3] + ["Ω"] * 5
        calls = self.count_calls(estimator, passwords, 2, monkeypatch)
        assert len(calls) == math.ceil(3 / 2)  # only encodable rows chunked

    def test_batch_size_above_eval_rows_is_capped(
        self, estimator, corpus, monkeypatch
    ):
        calls = self.count_calls(estimator, corpus[:130], 4096, monkeypatch)
        assert len(calls) == math.ceil(130 / EVAL_ROWS)

"""Conditional guessing extension."""

import numpy as np
import pytest

from repro.core.conditional import ConditionalGuesser, matches_template


class TestTemplateMatching:
    def test_exact(self):
        assert matches_template("jimmy91", "jimmy91")

    def test_wildcards(self):
        assert matches_template("jimmy91", "jimmy**")
        assert matches_template("jimmy91", "*immy9*")

    def test_length_mismatch(self):
        assert not matches_template("jimmy9", "jimmy**")

    def test_fixed_char_mismatch(self):
        assert not matches_template("jimmy91", "tommy**")


class TestGuesser:
    def test_validation(self, trained_model):
        with pytest.raises(ValueError):
            ConditionalGuesser(trained_model, population=2)
        with pytest.raises(ValueError):
            ConditionalGuesser(trained_model, elite_fraction=0.0)
        with pytest.raises(ValueError):
            ConditionalGuesser(trained_model, noise_scale=0.0)

    def test_no_wildcard_passthrough(self, trained_model):
        guesser = ConditionalGuesser(trained_model)
        assert guesser.guess("love12") == ["love12"]

    def test_template_too_long_raises(self, trained_model):
        guesser = ConditionalGuesser(trained_model)
        with pytest.raises(ValueError):
            guesser.guess("a" * 11 + "*")

    def test_template_bad_chars_raise(self, trained_model):
        guesser = ConditionalGuesser(trained_model)
        with pytest.raises(ValueError):
            guesser.guess("LOVE**")  # uppercase not in compact alphabet

    def test_guesses_respect_template(self, trained_model):
        guesser = ConditionalGuesser(trained_model, population=64)
        guesses = guesser.guess("love**", rounds=4, top_k=8, rng=np.random.default_rng(0))
        assert guesses, "search should find at least one feasible completion"
        assert all(matches_template(g, "love**") for g in guesses)

    def test_guesses_unique_and_ranked(self, trained_model):
        guesser = ConditionalGuesser(trained_model, population=64)
        guesses = guesser.guess("love*", rounds=4, top_k=10, rng=np.random.default_rng(1))
        assert len(guesses) == len(set(guesses))
        if len(guesses) >= 2:
            scores = trained_model.log_prob(guesses)
            assert scores[0] >= scores[-1]

    def test_top_k_respected(self, trained_model):
        guesser = ConditionalGuesser(trained_model, population=64)
        guesses = guesser.guess("mar***", rounds=3, top_k=3, rng=np.random.default_rng(2))
        assert len(guesses) <= 3

"""Static sampler and Gaussian Smoothing."""

import numpy as np
import pytest

from repro.core.sampling import StaticSampler
from repro.core.smoothing import GaussianSmoother
from repro.flows.priors import StandardNormalPrior


class TestStaticSampler:
    def test_validation(self, trained_model):
        with pytest.raises(ValueError):
            StaticSampler(trained_model, batch_size=0)

    def test_attack_report_shape(self, trained_model, trained_dataset):
        sampler = StaticSampler(trained_model, batch_size=128)
        report = sampler.attack(
            trained_dataset.test_set, [100, 400], np.random.default_rng(0)
        )
        assert [r.guesses for r in report.rows] == [100, 400]
        assert report.method == "PassFlow-Static"

    def test_total_guesses_exact(self, trained_model, trained_dataset):
        sampler = StaticSampler(trained_model, batch_size=77)  # non-divisor batch
        report = sampler.attack(trained_dataset.test_set, [200], np.random.default_rng(0))
        assert report.final().guesses == 200

    def test_concentrated_prior_causes_collisions(self, trained_model, trained_dataset):
        # sampling a tight ball around one latent point is the collision
        # regime of Sec. III-C: unique count must crater
        from repro.flows.priors import GaussianMixturePrior

        center = trained_model.encode_passwords(["love12"])
        tight = GaussianMixturePrior(center, sigmas=0.02)
        report = StaticSampler(trained_model, prior=tight).attack(
            trained_dataset.test_set, [1000], np.random.default_rng(1)
        )
        assert report.final().unique < 500

    def test_smoother_increases_uniqueness_in_collision_regime(
        self, trained_model, trained_dataset
    ):
        from repro.flows.priors import GaussianMixturePrior

        center = trained_model.encode_passwords(["love12"])
        tight = GaussianMixturePrior(center, sigmas=0.02)
        plain = StaticSampler(trained_model, prior=tight).attack(
            trained_dataset.test_set, [1000], np.random.default_rng(2)
        )
        smoothed = StaticSampler(
            trained_model,
            prior=tight,
            smoother=GaussianSmoother(trained_model.encoder),
        ).attack(trained_dataset.test_set, [1000], np.random.default_rng(2))
        assert smoothed.final().unique > plain.final().unique


class TestGaussianSmoother:
    def test_validation(self, trained_model):
        with pytest.raises(ValueError):
            GaussianSmoother(trained_model.encoder, sigma_scale=0.0)
        with pytest.raises(ValueError):
            GaussianSmoother(trained_model.encoder, max_attempts=0)

    def test_non_colliding_untouched(self, trained_model):
        smoother = GaussianSmoother(trained_model.encoder)
        passwords = ["love12", "maria9"]
        out = smoother.smooth(passwords, None, set(), np.random.default_rng(0))
        assert out == passwords

    def test_collisions_perturbed(self, trained_model):
        smoother = GaussianSmoother(trained_model.encoder, max_attempts=8)
        seen = {"love12"}
        out = smoother.smooth(["love12"], None, seen, np.random.default_rng(0))
        assert out[0] != "love12" or out[0] in seen  # either broken or gave up
        # with 8 attempts at bin-scale noise a change is essentially certain
        assert out[0] != "love12"

    def test_perturbed_stays_similar(self, trained_model):
        from repro.analysis.neighborhood import edit_distance

        smoother = GaussianSmoother(trained_model.encoder, sigma_scale=0.5, max_attempts=4)
        out = smoother.smooth(["love12"], None, {"love12"}, np.random.default_rng(1))
        assert edit_distance("love12", out[0]) <= 3

    def test_features_length_mismatch_raises(self, trained_model):
        smoother = GaussianSmoother(trained_model.encoder)
        with pytest.raises(ValueError):
            smoother.smooth(["a", "b"], np.zeros((1, 10)), set(), np.random.default_rng(0))

    def test_batch_with_mixed_collisions(self, trained_model):
        smoother = GaussianSmoother(trained_model.encoder, max_attempts=6)
        seen = {"love12", "magic7"}
        passwords = ["love12", "fresh1", "magic7"]
        out = smoother.smooth(passwords, None, seen, np.random.default_rng(2))
        assert out[1] == "fresh1"
        assert out[0] not in seen and out[2] not in seen

"""Shared fixtures.

The expensive artifact -- a trained (tiny) PassFlow model over a synthetic
corpus -- is session-scoped so the core/analysis/eval tests reuse one
training run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import PassFlow, PassFlowConfig
from repro.data.alphabet import compact_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.synthetic import SyntheticConfig, SyntheticRockYou


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: stress tests excluded from the default CI tier-1 run "
        "(select with -m slow)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng() -> np.random.Generator:
    return np.random.default_rng(999)


@pytest.fixture(scope="session")
def alphabet():
    return compact_alphabet()


@pytest.fixture(scope="session")
def corpus(alphabet):
    generator = SyntheticRockYou(
        np.random.default_rng(7),
        SyntheticConfig(vocabulary_size=20, max_suffix_digits=2),
        alphabet,
    )
    return generator.generate(3000)


@pytest.fixture(scope="session")
def trained_model(alphabet, corpus):
    """A tiny PassFlow trained enough to have a meaningful latent space."""
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars,
        num_couplings=6,
        hidden=32,
        batch_size=128,
        epochs=12,
        seed=11,
    )
    model = PassFlow(config)
    dataset = PasswordDataset(corpus[:1500], corpus[1500:], model.encoder)
    model.fit(dataset)
    return model


@pytest.fixture(scope="session")
def trained_dataset(trained_model, corpus):
    return PasswordDataset(corpus[:1500], corpus[1500:], trained_model.encoder)
